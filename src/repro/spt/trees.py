"""Shortest-path trees with path extraction and routing-table export.

A :class:`ShortestPathTree` packages the output of one Dijkstra/BFS run:
root, parent pointers, exact integer distances and hop counts.  It is
the unit the paper's applications consume — Algorithm 1 (subset-rp)
takes unions of two such trees, the distributed constructions overlay
them, and routing tables are their next-hop encoding (Section 2).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, KeysView, Optional, Tuple

from repro.exceptions import DisconnectedError, GraphError
from repro.graphs.base import Edge, canonical_edge
from repro.spt.dijkstra import WeightFn, dijkstra
from repro.spt.paths import Path


class ShortestPathTree:
    """An out-tree of selected shortest paths from a single root.

    Paths run *away from* the root: ``path_to(v)`` is the selected
    ``root ~> v`` path.  With a consistent tiebreaking scheme, the
    overlay of all ``{root} x V`` selected paths is exactly such a tree
    (Section 2, first bullet under "Consistency").
    """

    __slots__ = ("_root", "_parent", "_dist", "_hops", "_scale", "_order")

    _order: Optional[Tuple[int, ...]]

    def __init__(self, root: int, parent: Dict[int, Optional[int]],
                 dist: Dict[int, int], scale: int = 1):
        if root not in parent or parent[root] is not None:
            raise GraphError(f"parent map does not root at {root}")
        self._root = root
        self._parent = dict(parent)
        self._dist = dict(dist)
        self._scale = scale
        # Hop counts: recoverable from the scaled weights because a
        # simple path's perturbation is < scale/2 in magnitude.
        self._hops = {
            v: (d + scale // 2) // scale for v, d in self._dist.items()
        }
        self._order = None

    # ------------------------------------------------------------------
    @classmethod
    def compute(cls, graph: Any, root: int, weight: WeightFn,
                scale: int = 1) -> "ShortestPathTree":
        """Run Dijkstra and wrap the result."""
        dist, parent = dijkstra(graph, root, weight)
        return cls(root, parent, dist, scale)

    # ------------------------------------------------------------------
    @property
    def root(self) -> int:
        return self._root

    @property
    def scale(self) -> int:
        """Weight units per hop (see :mod:`repro.core.weights`)."""
        return self._scale

    def reaches(self, v: int) -> bool:
        return v in self._parent

    def reached_vertices(self) -> KeysView[int]:
        return self._parent.keys()

    def vertices_by_hop(self) -> Tuple[int, ...]:
        """Reached vertices sorted by hop distance (cached tuple).

        Trees are immutable once built, so the root-to-leaf processing
        order consumed by scan-style algorithms (e.g.
        :func:`repro.core.restoration.tree_fault_free_vertices`) is
        computed once per tree instead of re-sorted on every fault set.
        """
        order = self._order
        if order is None:
            order = self._order = tuple(
                sorted(self._parent, key=self._hops.__getitem__)
            )
        return order

    def parent(self, v: int) -> Optional[int]:
        if v not in self._parent:
            raise DisconnectedError(self._root, v)
        return self._parent[v]

    def weighted_distance(self, v: int) -> int:
        """Exact integer distance in the reweighted graph ``G*``."""
        if v not in self._dist:
            raise DisconnectedError(self._root, v)
        return self._dist[v]

    def hop_distance(self, v: int) -> int:
        """Unweighted (hop) distance, recovered from the scaled weight."""
        if v not in self._hops:
            raise DisconnectedError(self._root, v)
        return self._hops[v]

    def path_to(self, v: int) -> Path:
        """The selected ``root ~> v`` path."""
        if v not in self._parent:
            raise DisconnectedError(self._root, v)
        chain = [v]
        node = v
        while True:
            nxt = self._parent[node]
            if nxt is None:
                break
            node = nxt
            chain.append(node)
        return Path(reversed(chain))

    def edges(self) -> Iterator[Edge]:
        """Canonical undirected tree edges."""
        for v, p in self._parent.items():
            if p is not None:
                yield canonical_edge(v, p)

    def edge_set(self) -> frozenset:
        return frozenset(self.edges())

    def next_hop(self, v: int) -> Optional[int]:
        """First vertex after the root on ``path_to(v)`` (None at root)."""
        if v == self._root:
            return None
        if v not in self._parent:
            raise DisconnectedError(self._root, v)
        node = v
        while self._parent[node] != self._root:
            nxt = self._parent[node]
            if nxt is None:  # pragma: no cover - defensive
                raise GraphError("broken parent chain")
            node = nxt
        return node

    def depth(self) -> int:
        """Maximum hop distance of any reached vertex."""
        return max(self._hops.values(), default=0)

    def __contains__(self, v: int) -> bool:
        return v in self._parent

    def __repr__(self) -> str:
        return (
            f"ShortestPathTree(root={self._root}, "
            f"reached={len(self._parent)})"
        )
