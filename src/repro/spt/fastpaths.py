"""Array-based BFS/Dijkstra inner loops over CSR snapshots.

These are the traversal kernels behind the batched fault-scenario
engine: the public entry points in :mod:`repro.spt.bfs` and
:mod:`repro.spt.dijkstra` dispatch here whenever the input graph
exposes a CSR fast path (see :func:`repro.graphs.csr.as_csr`), and fall
back to the generic ``GraphLike`` reference loops otherwise.

Correctness contract, enforced by the randomized cross-check tests:

* ``bfs_distances`` / ``hop_distance`` / ``bfs_layers`` — identical
  output to the reference for every graph and fault set (hop distances
  are independent of traversal order).
* ``bfs_tree`` — identical parent maps: CSR rows are stored sorted, so
  the level-synchronous loop below discovers vertices in exactly the
  FIFO + ``sorted_neighbors`` order of the reference.
* ``dijkstra`` — identical distance maps always; identical parent maps
  whenever the weight function yields unique shortest paths (the only
  regime the tiebreaking layer uses).  Under non-unique weights the
  parent choice may legitimately differ, as it already does between
  ``Graph`` and ``FaultView`` traversal orders.
* ``csr_dijkstra_flat`` and the weighted-vector kernels — same contract
  as ``dijkstra``, but arc weights come from the snapshot's flat
  ``weights`` array (see :class:`repro.graphs.csr.CSRGraph`) instead of
  a per-arc Python callable.  This is the weighted analogue of the BFS
  fast path: zero interpreter frames per arc, positivity validated once
  at snapshot construction.

All loops index plain Python lists of machine ints; the arc mask (a
``bytearray`` with one flag per directed arc) is consulted inline, so a
fault scenario costs O(|F|) setup and zero per-arc canonicalisation.

Every kernel here is *single-source*.  The batched multi-source
siblings — bit-packed frontier BFS and scratch-reusing weighted
batches, bit-identical to mapping these kernels over the source
batch — live in :mod:`repro.spt.batched`.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.backends.dispatch import kernel_impl
from repro.exceptions import GraphError
from repro.graphs.csr import CSRGraph

UNREACHABLE = -1


def _check_source(csr: CSRGraph, source: int, role: str = "source") -> None:
    if not csr.has_vertex(source):
        raise GraphError(f"unknown {role} vertex {source}")


def csr_bfs_distances(csr: CSRGraph, mask: Optional[bytearray],
                      source: int) -> List[int]:
    """Hop distances from ``source`` over a (possibly masked) snapshot.

    Dispatching wrapper: the call is served by whichever kernel
    backend (:mod:`repro.backends`) the calibrated table picks for
    this snapshot's size — the loops below
    (:func:`csr_bfs_distances_loops`) or the vectorized sibling —
    with bit-identical results either way.
    """
    return kernel_impl("csr_bfs_distances", csr)(csr, mask, source)


def csr_bfs_distances_loops(csr: CSRGraph, mask: Optional[bytearray],
                            source: int) -> List[int]:
    """The pure-Python loop implementation (the ``pyloops`` backend)."""
    _check_source(csr, source)
    indptr, indices = csr.indptr, csr.indices
    dist = [UNREACHABLE] * csr.n
    dist[source] = 0
    frontier = [source]
    depth = 0
    if mask is None:
        while frontier:
            depth += 1
            nxt: List[int] = []
            for u in frontier:
                for v in indices[indptr[u]:indptr[u + 1]]:
                    if dist[v] < 0:
                        dist[v] = depth
                        nxt.append(v)
            frontier = nxt
    else:
        while frontier:
            depth += 1
            nxt = []
            for u in frontier:
                lo, hi = indptr[u], indptr[u + 1]
                for v, ok in zip(indices[lo:hi], mask[lo:hi]):
                    if ok and dist[v] < 0:
                        dist[v] = depth
                        nxt.append(v)
            frontier = nxt
    return dist


def csr_bfs_tree(csr: CSRGraph, mask: Optional[bytearray],
                 source: int) -> Dict[int, Optional[int]]:
    """Deterministic BFS parent map (smallest-id parent wins).

    CSR rows are sorted, and the level-synchronous expansion below
    visits frontier vertices in discovery order — exactly the FIFO
    queue order of the reference ``bfs_tree`` — so parent assignments
    match it vertex for vertex.
    """
    _check_source(csr, source)
    indptr, indices = csr.indptr, csr.indices
    seen = [False] * csr.n
    seen[source] = True
    parent: Dict[int, Optional[int]] = {source: None}
    frontier = [source]
    while frontier:
        nxt: List[int] = []
        for u in frontier:
            lo, hi = indptr[u], indptr[u + 1]
            row = indices[lo:hi] if mask is None else [
                v for v, ok in zip(indices[lo:hi], mask[lo:hi]) if ok
            ]
            for v in row:
                if not seen[v]:
                    seen[v] = True
                    parent[v] = u
                    nxt.append(v)
        frontier = nxt
    return parent


def csr_hop_distance(csr: CSRGraph, mask: Optional[bytearray],
                     source: int, target: int) -> int:
    """Early-exit pairwise hop distance (``UNREACHABLE`` if cut off)."""
    _check_source(csr, source)
    _check_source(csr, target, role="target")
    if source == target:
        return 0
    indptr, indices = csr.indptr, csr.indices
    dist = [UNREACHABLE] * csr.n
    dist[source] = 0
    frontier = [source]
    depth = 0
    while frontier:
        depth += 1
        nxt: List[int] = []
        for u in frontier:
            lo, hi = indptr[u], indptr[u + 1]
            row = indices[lo:hi] if mask is None else (
                v for v, ok in zip(indices[lo:hi], mask[lo:hi]) if ok
            )
            for v in row:
                if dist[v] < 0:
                    if v == target:
                        return depth
                    dist[v] = depth
                    nxt.append(v)
        frontier = nxt
    return UNREACHABLE


def csr_dijkstra(csr: CSRGraph, mask: Optional[bytearray], source: int,
                 weight: Callable[[int, int], int],
                 targets: Optional[Iterable[int]] = None
                 ) -> Tuple[Dict[int, int], Dict[int, Optional[int]]]:
    """Single-source Dijkstra over a (possibly masked) snapshot.

    Same semantics and return shape as the reference
    :func:`repro.spt.dijkstra.dijkstra`; only the adjacency scan
    differs (flat arrays + inline mask test instead of per-arc
    canonicalisation).
    """
    _check_source(csr, source)
    indptr, indices = csr.indptr, csr.indices
    remaining = set(targets) if targets is not None else None
    settled = [False] * csr.n
    dist: Dict[int, int] = {}
    parent: Dict[int, Optional[int]] = {}
    tentative: List[Optional[int]] = [None] * csr.n
    tentative_parent: List[Optional[int]] = [None] * csr.n
    tentative[source] = 0
    heap = [(0, source)]
    push, pop = heapq.heappush, heapq.heappop
    while heap:
        d, u = pop(heap)
        if settled[u]:
            continue
        settled[u] = True
        dist[u] = d
        parent[u] = tentative_parent[u]
        if remaining is not None:
            remaining.discard(u)
            if not remaining:
                break
        lo, hi = indptr[u], indptr[u + 1]
        row = indices[lo:hi] if mask is None else (
            v for v, ok in zip(indices[lo:hi], mask[lo:hi]) if ok
        )
        for v in row:
            if settled[v]:
                continue
            w = weight(u, v)
            if w <= 0:
                raise GraphError(
                    f"non-positive arc weight {w} on ({u}, {v})"
                )
            candidate = d + w
            known = tentative[v]
            if known is None or candidate < known:
                tentative[v] = candidate
                tentative_parent[v] = u
                push(heap, (candidate, v))
    return dist, parent


def flat_weights(csr: CSRGraph) -> List[int]:
    """The snapshot's flat per-arc weights array (raises if absent).

    The one shared guard for every kernel that reads weights by arc
    index — the flat Dijkstra family below, the batched siblings in
    :mod:`repro.spt.batched`, and the delta-repair kernels in
    :mod:`repro.incremental.repair`.
    """
    if csr.weights is None:
        raise GraphError("snapshot carries no weights array")
    return csr.weights



def csr_dijkstra_flat(csr: CSRGraph, mask: Optional[bytearray],
                      source: int, targets: Optional[Iterable[int]] = None
                      ) -> Tuple[Dict[int, int], Dict[int, Optional[int]]]:
    """Single-source Dijkstra reading weights from the flat arc array.

    Same semantics and return shape as :func:`csr_dijkstra`, but the
    snapshot must carry a ``weights`` array.  Dispatching wrapper:
    full-tree calls (``targets is None``) go through the kernel
    backend seam (:mod:`repro.backends`); targeted calls always run
    the loops (:func:`csr_dijkstra_flat_loops`) — the early exit is
    inherently sequential.
    """
    if targets is not None:
        return csr_dijkstra_flat_loops(csr, mask, source, targets)
    return kernel_impl("csr_dijkstra_flat", csr)(csr, mask, source)


def csr_dijkstra_flat_loops(csr: CSRGraph, mask: Optional[bytearray],
                            source: int,
                            targets: Optional[Iterable[int]] = None
                            ) -> Tuple[Dict[int, int],
                                       Dict[int, Optional[int]]]:
    """The pure-Python loop implementation (the ``pyloops`` backend).

    The inner loop reads ``weights[i]`` by index instead of calling a
    Python weight function per arc.  Weight positivity was validated
    when the array was built, so no per-arc check is needed.
    """
    _check_source(csr, source)
    weights = flat_weights(csr)
    indptr, indices = csr.indptr, csr.indices
    remaining = set(targets) if targets is not None else None
    settled = [False] * csr.n
    dist: Dict[int, int] = {}
    parent: Dict[int, Optional[int]] = {}
    tentative: List[Optional[int]] = [None] * csr.n
    tentative_parent: List[Optional[int]] = [None] * csr.n
    tentative[source] = 0
    heap = [(0, source)]
    push, pop = heapq.heappush, heapq.heappop
    while heap:
        d, u = pop(heap)
        if settled[u]:
            continue
        settled[u] = True
        dist[u] = d
        parent[u] = tentative_parent[u]
        if remaining is not None:
            remaining.discard(u)
            if not remaining:
                break
        for i in range(indptr[u], indptr[u + 1]):
            if mask is not None and not mask[i]:
                continue
            v = indices[i]
            if settled[v]:
                continue
            candidate = d + weights[i]
            known = tentative[v]
            if known is None or candidate < known:
                tentative[v] = candidate
                tentative_parent[v] = u
                push(heap, (candidate, v))
    return dist, parent


def csr_weighted_distances(csr: CSRGraph, mask: Optional[bytearray],
                           source: int) -> List[int]:
    """Dense weighted distance vector (``UNREACHABLE`` where cut off).

    The weighted analogue of :func:`csr_bfs_distances` — the scenario
    engine's hot path for weighted streams: no parent bookkeeping, no
    dict results, just one flat vector per scenario.  Dispatching
    wrapper over the kernel backend seam (:mod:`repro.backends`).
    """
    return kernel_impl("csr_weighted_distances", csr)(csr, mask, source)


def csr_weighted_distances_loops(csr: CSRGraph, mask: Optional[bytearray],
                                 source: int) -> List[int]:
    """The pure-Python loop implementation (the ``pyloops`` backend)."""
    _check_source(csr, source)
    weights = flat_weights(csr)
    indptr, indices = csr.indptr, csr.indices
    dist = [UNREACHABLE] * csr.n
    tentative: List[Optional[int]] = [None] * csr.n
    tentative[source] = 0
    heap = [(0, source)]
    push, pop = heapq.heappush, heapq.heappop
    if mask is None:
        while heap:
            d, u = pop(heap)
            if dist[u] >= 0:
                continue
            dist[u] = d
            for i in range(indptr[u], indptr[u + 1]):
                v = indices[i]
                if dist[v] >= 0:
                    continue
                candidate = d + weights[i]
                known = tentative[v]
                if known is None or candidate < known:
                    tentative[v] = candidate
                    push(heap, (candidate, v))
    else:
        while heap:
            d, u = pop(heap)
            if dist[u] >= 0:
                continue
            dist[u] = d
            for i in range(indptr[u], indptr[u + 1]):
                if not mask[i]:
                    continue
                v = indices[i]
                if dist[v] >= 0:
                    continue
                candidate = d + weights[i]
                known = tentative[v]
                if known is None or candidate < known:
                    tentative[v] = candidate
                    push(heap, (candidate, v))
    return dist


def csr_weighted_distance(csr: CSRGraph, mask: Optional[bytearray],
                          source: int, target: int) -> int:
    """Early-exit pairwise weighted distance (``UNREACHABLE`` if cut off)."""
    _check_source(csr, source)
    _check_source(csr, target, role="target")
    if source == target:
        return 0
    weights = flat_weights(csr)
    indptr, indices = csr.indptr, csr.indices
    settled = [False] * csr.n
    tentative: List[Optional[int]] = [None] * csr.n
    tentative[source] = 0
    heap = [(0, source)]
    push, pop = heapq.heappush, heapq.heappop
    while heap:
        d, u = pop(heap)
        if settled[u]:
            continue
        if u == target:
            return d
        settled[u] = True
        for i in range(indptr[u], indptr[u + 1]):
            if mask is not None and not mask[i]:
                continue
            v = indices[i]
            if settled[v]:
                continue
            candidate = d + weights[i]
            known = tentative[v]
            if known is None or candidate < known:
                tentative[v] = candidate
                push(heap, (candidate, v))
    return UNREACHABLE


def csr_count_min_weight_paths(csr: CSRGraph, mask: Optional[bytearray],
                               source: int) -> Dict[int, int]:
    """Flat-array variant of
    :func:`repro.spt.dijkstra.count_min_weight_paths`.

    Counts are pushed *forward* along tight arcs in settling order —
    every tight arc ``(u, v)`` has ``dist[u] < dist[v]`` strictly
    (positive weights), so ``count[u]`` is final when ``u`` is
    processed.  This visits each arc once from its tail row, which is
    what lets an antisymmetric weights array be read by index (the
    reference's backward formulation would need the reverse arc's
    position).  Output is identical to the reference.
    """
    dist, _ = csr_dijkstra_flat(csr, mask, source)
    weights = flat_weights(csr)
    indptr, indices = csr.indptr, csr.indices
    count = {v: 0 for v in dist}
    count[source] = 1
    dist_get = dist.get
    for u in sorted(dist, key=dist.__getitem__):
        cu = count[u]
        du = dist[u]
        for i in range(indptr[u], indptr[u + 1]):
            if mask is not None and not mask[i]:
                continue
            v = indices[i]
            if dist_get(v) == du + weights[i]:
                count[v] += cu
    return count
