"""Shortest-path substrate: path algebra, BFS, exact-integer Dijkstra.

This package supplies everything the tiebreaking layer builds on:

* :class:`~repro.spt.paths.Path` — immutable vertex sequences with the
  concatenation/reversal algebra the restoration lemma manipulates.
* :mod:`~repro.spt.bfs` — unweighted distances and BFS trees.
* :mod:`~repro.spt.dijkstra` — Dijkstra over *integer* arc weights (the
  reweighted graph ``G*`` of Section 3.1), plus an exact counter of
  minimum-weight paths used to certify tiebreaking uniqueness.
* :class:`~repro.spt.trees.ShortestPathTree` — parent-pointer trees with
  path extraction, the object routing tables are derived from.
* :mod:`~repro.spt.apsp` — all-pairs wrappers, diameter, eccentricity.
* :mod:`~repro.spt.fastpaths` — array BFS/Dijkstra kernels over CSR
  snapshots (:mod:`repro.graphs.csr`); the entry points above dispatch
  to them automatically for CSR inputs and keep the generic
  ``GraphLike`` loops as the reference implementation.
* :mod:`~repro.spt.batched` — multi-source batch kernels: bit-packed
  frontier BFS (one traversal wave serves many sources) and
  scratch-reusing weighted batches; the many-source entry points in
  :mod:`~repro.spt.apsp` and the scenario engine dispatch onto them.
"""

from repro.spt.paths import Path
from repro.spt.batched import (
    csr_bfs_distances_many,
    csr_dijkstra_flat_many,
    csr_weighted_distances_many,
)
from repro.spt.bfs import bfs_distances, bfs_tree
from repro.spt.dijkstra import dijkstra, count_min_weight_paths
from repro.spt.trees import ShortestPathTree
from repro.spt.apsp import (
    all_pairs_bfs_distances,
    diameter,
    eccentricities,
    eccentricity,
)

__all__ = [
    "Path",
    "bfs_distances",
    "bfs_tree",
    "csr_bfs_distances_many",
    "csr_dijkstra_flat_many",
    "csr_weighted_distances_many",
    "dijkstra",
    "count_min_weight_paths",
    "ShortestPathTree",
    "all_pairs_bfs_distances",
    "diameter",
    "eccentricities",
    "eccentricity",
]
