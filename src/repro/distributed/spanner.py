"""Distributed FT +4 additive spanners (Corollary 9).

The corollary's recipe: sample σ cluster centers, run the clustering
step (one communication round — centers announce themselves, every
vertex locally decides which incident edges to keep), then build a
distributed f-FT ``C x C`` preserver (Theorem 8) and union.  The
spanner guarantee is Lemma 32's, which is deterministic given any
correct subset preserver; the distributed part only changes *how* the
preserver is built, so measured rounds = 1 + preserver rounds.

The clustering announcement round is simulated for real on the CONGEST
simulator (it is also where a practical system would piggyback the
weight exchange of Lemma 36).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.exceptions import GraphError
from repro.graphs.base import Edge, Graph, canonical_edge
from repro.distributed.congest import (
    CongestSimulator,
    NodeAlgorithm,
    NodeHandle,
    RunStats,
)
from repro.distributed.preserver import (
    DistributedBuildResult,
    distributed_ss_preserver,
)
from repro.spanners.additive import Spanner, default_sigma


class ClusterNode(NodeAlgorithm):
    """The one-round clustering step: centers announce, vertices choose.

    After the announcement round each vertex knows which neighbours are
    centers and locally selects either ``f + 1`` center edges
    (clustered) or all incident edges (unclustered).
    """

    def __init__(self, vertex: int, is_center: bool, f: int):
        self.vertex = vertex
        self.is_center = is_center
        self.f = f
        self.kept_edges: Set[Edge] = set()
        self.clustered = False

    def on_start(self, node: NodeHandle) -> None:
        if self.is_center:
            node.broadcast(("center",), words=1)
        node.wake_next_round()

    def on_round(self, node: NodeHandle,
                 inbox: List[Tuple[int, Any, int]]) -> None:
        if self.kept_edges:
            return
        center_neighbors = sorted(
            sender for sender, payload, _w in inbox
            if payload == ("center",)
        )
        if len(center_neighbors) >= self.f + 1:
            self.clustered = True
            for u in center_neighbors[: self.f + 1]:
                self.kept_edges.add(canonical_edge(self.vertex, u))
        else:
            for u in node.neighbors:
                self.kept_edges.add(canonical_edge(self.vertex, u))


@dataclass
class DistributedSpannerResult:
    """A spanner plus the distributed execution's accounting."""

    spanner: Spanner
    total_rounds: int
    clustering_stats: RunStats
    preserver_result: DistributedBuildResult


def distributed_ft_spanner(
    graph: Graph,
    faults_tolerated: int,
    sigma: Optional[int] = None,
    seed: int = 0,
    max_instances: int = 5000,
) -> DistributedSpannerResult:
    """Build an f-FT +4 spanner distributedly (Corollary 9).

    Parameters mirror :func:`repro.spanners.additive.ft_plus4_spanner`;
    σ defaults to the corollary's per-f choice (``sqrt(n)``, ``n^{1/3}``,
    ``n^{1/9}`` for f = 1, 2, 3, via
    :func:`~repro.spanners.additive.default_sigma`).
    """
    if faults_tolerated < 1:
        raise GraphError(
            f"faults_tolerated must be >= 1, got {faults_tolerated}"
        )
    n = graph.n
    f = faults_tolerated
    if sigma is None:
        sigma = default_sigma(n, f - 1)
    sigma = max(1, min(n, sigma))
    rng = random.Random(seed)
    centers = tuple(sorted(rng.sample(range(n), sigma)))
    center_set = set(centers)

    # Round 1: the clustering announcement, on the simulator for real.
    sim = CongestSimulator(graph, capacity_messages=1)
    nodes = {
        v: ClusterNode(v, v in center_set, f) for v in graph.vertices()
    }
    clustering_stats = sim.run(nodes)
    edges: Set[Edge] = set()
    clustered: Set[int] = set()
    for v, node in nodes.items():
        edges |= node.kept_edges
        if node.clustered:
            clustered.add(v)

    # Then the distributed C x C preserver (Theorem 8).
    preserver_result = distributed_ss_preserver(
        graph, centers, faults_tolerated=f, seed=seed + 1,
        max_instances=max_instances,
    )
    edges |= preserver_result.preserver.edges

    spanner = Spanner(
        graph=graph,
        edges=frozenset(edges),
        centers=centers,
        clustered=frozenset(clustered),
        faults_tolerated=f,
        preserver_size=preserver_result.preserver.size,
    )
    return DistributedSpannerResult(
        spanner=spanner,
        total_rounds=clustering_stats.rounds + preserver_result.total_rounds,
        clustering_stats=clustering_stats,
        preserver_result=preserver_result,
    )
