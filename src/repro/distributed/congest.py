"""A synchronous CONGEST-model simulator (Peleg [32]).

The model: one processor per vertex, synchronous rounds, and in each
round every vertex may exchange O(log n) bits with each neighbour.  The
simulator enforces that contract and *accounts* for everything the
paper's round/congestion bounds talk about:

* **capacity** — at most ``capacity_messages`` messages per directed
  edge per round.  Overflow either raises :class:`CongestError`
  (strict mode — an algorithm claiming O(1) messages per edge must
  survive it) or queues FIFO per directed edge (``queue_excess=True``
  — the regime Theorem 35's random-delay scheduling analyses).
* **words** — every message declares its size in O(log n)-bit words;
  totals and the per-edge maximum are reported in :class:`RunStats`.
* **locality** — a node can only send to graph neighbours; violating
  that raises immediately.

Algorithms are :class:`NodeAlgorithm` subclasses with two callbacks —
``on_start`` (round 0 setup) and ``on_round`` (invoked each round with
the node's inbox).  All sends made during a round are delivered at the
start of the next one.  The simulation ends at *quiescence* — no
messages in flight or queued and no node has requested wake-up — or at
``max_rounds``.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Iterable, List, Optional, Tuple

from repro.exceptions import CongestError
from repro.graphs.base import Graph


@dataclass
class RunStats:
    """Accounting for one simulated execution.

    Attributes
    ----------
    rounds:
        Rounds executed until quiescence.
    messages:
        Total messages delivered.
    words:
        Total O(log n)-bit words delivered.
    max_edge_congestion:
        Max over directed edges of total messages carried — the ``c``
        in Theorem 35's ``O(c + d log n)``.
    max_queue_delay:
        Largest number of rounds any message waited in an edge queue
        (0 in strict mode).
    """

    rounds: int = 0
    messages: int = 0
    words: int = 0
    max_edge_congestion: int = 0
    max_queue_delay: int = 0


class NodeAlgorithm:
    """Base class for per-node CONGEST algorithms.

    Subclasses override :meth:`on_start` and :meth:`on_round`; both
    receive a :class:`NodeHandle` for sending and introspection.  Node
    state lives on the subclass instance (one instance per vertex).
    """

    def on_start(self, node: "NodeHandle") -> None:
        """Round-0 setup (e.g. the BFS source announces itself)."""

    def on_round(self, node: "NodeHandle",
                 inbox: List[Tuple[int, Any, int]]) -> None:
        """Handle this round's inbox: ``(sender, payload, words)``."""


class NodeHandle:
    """The API a node algorithm sees: its id, neighbours, and sends."""

    __slots__ = ("vertex", "_sim", "_neighbors")

    def __init__(self, vertex: int, sim: "CongestSimulator",
                 neighbors: Tuple[int, ...]):
        self.vertex = vertex
        self._sim = sim
        self._neighbors = neighbors

    @property
    def neighbors(self) -> Tuple[int, ...]:
        return self._neighbors

    @property
    def round(self) -> int:
        return self._sim._round

    def send(self, neighbor: int, payload: Any, words: int = 1) -> None:
        """Queue a message for delivery to ``neighbor`` next round."""
        self._sim._submit(self.vertex, neighbor, payload, words)

    def broadcast(self, payload: Any, words: int = 1) -> None:
        """Send the same message to every neighbour."""
        for u in self._neighbors:
            self.send(u, payload, words)

    def wake_next_round(self) -> None:
        """Request an ``on_round`` call next round even with empty inbox."""
        self._sim._wake.add(self.vertex)


class CongestSimulator:
    """Synchronous round executor over a fixed graph.

    Parameters
    ----------
    graph:
        The communication network.
    capacity_messages:
        Messages per directed edge per round (default 1 — the CONGEST
        norm for constant-size payloads).
    queue_excess:
        If True, overflow messages queue FIFO per directed edge and are
        delivered in later rounds (the scheduled-concurrency regime);
        if False, overflow raises :class:`CongestError`.
    word_bits:
        Bits per word; defaults to ``ceil(log2 n)``.  Purely
        informational — callers convert payload sizes to words.
    """

    def __init__(self, graph: Graph, capacity_messages: int = 1,
                 queue_excess: bool = False,
                 word_bits: Optional[int] = None):
        self._graph = graph
        self._capacity = capacity_messages
        self._queue_excess = queue_excess
        self.word_bits = word_bits or max(1, (graph.n - 1).bit_length())
        self._round = 0
        self._wake: set = set()
        # per directed edge: FIFO of (payload, words, submit_round)
        self._queues: Dict[Tuple[int, int], Deque] = defaultdict(deque)
        self._inboxes: Dict[int, List[Tuple[int, Any, int]]] = defaultdict(list)
        self._edge_load: Dict[Tuple[int, int], int] = defaultdict(int)
        self._stats = RunStats()
        self._neighbors = {
            v: tuple(graph.sorted_neighbors(v)) for v in graph.vertices()
        }

    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        return self._graph

    def _submit(self, sender: int, receiver: int, payload: Any,
                words: int) -> None:
        if receiver not in self._neighbors.get(sender, ()):
            raise CongestError(
                f"node {sender} tried to message non-neighbour {receiver}"
            )
        if words < 1:
            raise CongestError(f"message words must be >= 1, got {words}")
        self._queues[(sender, receiver)].append(
            (payload, words, self._round)
        )

    def _deliver(self) -> bool:
        """Move queued messages into next-round inboxes; True if any."""
        delivered_any = False
        for arc, queue in self._queues.items():
            if not queue:
                continue
            budget = self._capacity
            while queue and budget > 0:
                payload, words, submitted = queue.popleft()
                budget -= 1
                delivered_any = True
                sender, receiver = arc
                self._inboxes[receiver].append((sender, payload, words))
                self._edge_load[arc] += 1
                self._stats.messages += 1
                self._stats.words += words
                # Normal latency is one round; anything beyond that is
                # queueing delay caused by contention.
                delay = self._round - submitted - 1
                if delay > self._stats.max_queue_delay:
                    self._stats.max_queue_delay = delay
            if queue and not self._queue_excess:
                raise CongestError(
                    f"edge {arc} over capacity at round {self._round}: "
                    f"{len(queue)} messages left beyond "
                    f"{self._capacity}/round"
                )
        return delivered_any

    def _pending(self) -> bool:
        return any(self._queues.values())

    # ------------------------------------------------------------------
    def run(self, algorithms: Dict[int, NodeAlgorithm],
            max_rounds: int = 100_000) -> RunStats:
        """Execute to quiescence.  ``algorithms`` maps vertex -> node.

        Every vertex of the graph must have an algorithm instance
        (vertices with nothing to do can share a base
        :class:`NodeAlgorithm`, which ignores everything).
        """
        handles = {
            v: NodeHandle(v, self, self._neighbors[v])
            for v in self._graph.vertices()
        }
        for v in self._graph.vertices():
            if v not in algorithms:
                raise CongestError(f"no algorithm for vertex {v}")

        self._round = 0
        for v, algo in algorithms.items():
            algo.on_start(handles[v])

        while self._round < max_rounds:
            self._round += 1
            delivered = self._deliver()
            wake = self._wake
            self._wake = set()
            if not delivered and not wake and not self._pending():
                self._round -= 1  # the empty round doesn't count
                break
            active = set(self._inboxes) | wake
            inboxes = self._inboxes
            self._inboxes = defaultdict(list)
            for v in sorted(active):
                algorithms[v].on_round(handles[v], inboxes.get(v, []))
        self._stats.rounds = self._round
        self._stats.max_edge_congestion = max(
            self._edge_load.values(), default=0
        )
        return self._stats
