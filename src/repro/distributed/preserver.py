"""Distributed FT preserver constructions (Lemma 36, Theorem 8).

The 1-FT ``S x S`` preserver (Lemma 36) is implemented exactly as in
the paper: every vertex samples restorable tie-breaking weights for its
incident edges (one communication round), then the |S| SPT instances of
Lemma 34 run *simultaneously* under random-delay scheduling
(Theorem 35); the preserver is the union of the resulting trees, with
O(|S| n) edges and a measured makespan of Õ(D + |S|) rounds.

For 2-FT and 3-FT ``S x S`` preservers (Theorem 8, items 2-3) the paper
composes its weight function with Parter '20's sourcewise machinery.
Per DESIGN.md we substitute that machinery with the *fault-enumeration
waves* construction: wave ``k`` launches one SPT instance per
``(source, fault-set)`` pair whose fault chain extends a tree edge of a
wave-``k-1`` instance — the distributed mirror of the stability-based
overlay of Theorem 26, scheduled concurrently per wave.  The output
preserver is exactly the centralized overlay (hence provably correct by
Theorem 31); only the round complexity is weaker than Parter '20's.
The benchmark reports measured rounds and flags the gap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.exceptions import CongestError, GraphError
from repro.graphs.base import Edge, Graph
from repro.core.weights import AntisymmetricWeights
from repro.distributed.congest import RunStats
from repro.distributed.scheduler import Instance, run_concurrent_instances
from repro.preservers.ft_bfs import Preserver


@dataclass
class DistributedBuildResult:
    """A preserver plus the distributed execution's accounting.

    Attributes
    ----------
    preserver:
        The constructed preserver (same type as the centralized one).
    total_rounds:
        Sum of wave makespans — the construction's round complexity.
    wave_stats:
        Per-wave :class:`RunStats` (one concurrent scheduled run each).
    instances:
        Total SPT instances launched across all waves.
    """

    preserver: Preserver
    total_rounds: int
    wave_stats: List[RunStats] = field(default_factory=list)
    instances: int = 0

    @property
    def total_messages(self) -> int:
        return sum(s.messages for s in self.wave_stats)

    @property
    def max_edge_congestion(self) -> int:
        return max((s.max_edge_congestion for s in self.wave_stats), default=0)


def distributed_sv_preserver(
    graph: Graph,
    sources: Sequence[int],
    f: int,
    weights: Optional[AntisymmetricWeights] = None,
    seed: int = 0,
    max_instances: int = 5000,
    charge_enumeration: bool = False,
) -> DistributedBuildResult:
    """Distributed f-FT ``S x V`` preserver by fault-enumeration waves.

    Wave 0 runs one SPT instance per source.  Wave ``k`` runs one
    instance per (source, fault chain of length ``k``), where each
    chain extends a previous chain by one tree edge of its instance —
    the distributed analogue of the Theorem-26 overlay.  Instances in a
    wave share edge capacity and are scheduled with random delays
    (Theorem 35), so each wave's measured makespan reflects true
    contention.

    Raises :class:`CongestError` if the instance count would exceed
    ``max_instances`` (the waves grow as ``(n-1)^k``; keep ``f <= 2``
    and graphs small in simulation).

    With ``charge_enumeration=True`` the round total additionally
    charges, per wave, the pipelined upcast each source needs to learn
    its instances' tree edges before naming the next wave's instances
    (``depth + #edges`` rounds, the standard pipelining bound; sources
    upcast concurrently on their own trees, so the per-wave charge is
    the maximum over sources).  Off by default so Lemma 36's ``f=0``
    numbers (which need no enumeration) are unaffected.
    """
    if f < 0:
        raise GraphError(f"f must be >= 0, got {f}")
    source_list = sorted(set(sources))
    if weights is None:
        # In the real protocol each vertex samples its incident edges'
        # weights and shares them with the other endpoint in one round
        # (Lemma 36's first step); centrally sampling the same values is
        # communication-equivalent.
        weights = AntisymmetricWeights.random(graph, f=max(f, 1) + 1,
                                              seed=seed)

    edges: Set[Edge] = set()
    wave_stats: List[RunStats] = []
    launched = 0
    seen: Set[Tuple[int, FrozenSet[Edge]]] = set()
    source_depth: Dict[int, int] = {}
    current: List[Tuple[int, FrozenSet[Edge]]] = [
        (s, frozenset()) for s in source_list
    ]

    for depth in range(f + 1):
        instances: List[Instance] = []
        for i, (s, faults) in enumerate(current):
            if (s, faults) in seen:
                continue
            seen.add((s, faults))
            delay = i % max(1, len(current))
            instances.append(((s, faults), s, tuple(sorted(faults)), delay))
        if not instances:
            break
        launched += len(instances)
        if launched > max_instances:
            raise CongestError(
                f"fault-enumeration needs > {max_instances} instances; "
                "reduce f or graph size for simulation"
            )
        trees, stats = run_concurrent_instances(
            graph, instances, weights.weight, weights.scale
        )
        next_wave: List[Tuple[int, FrozenSet[Edge]]] = []
        per_source_new_edges: Dict[int, int] = {}
        for (s, faults), tree in trees.items():
            tree_edges = tree.edge_set()
            edges |= tree_edges
            per_source_new_edges[s] = (
                per_source_new_edges.get(s, 0) + len(tree_edges)
            )
            if not faults:
                source_depth[s] = tree.depth()
            if depth < f:
                for e in tree_edges:
                    chain = faults | {e}
                    if (s, chain) not in seen:
                        next_wave.append((s, chain))
        if charge_enumeration and depth < f and per_source_new_edges:
            # each source upcasts its instances' tree edges along its
            # own wave-0 tree before the next wave can be named
            charge = max(
                source_depth.get(s, graph.n) + items
                for s, items in per_source_new_edges.items()
            )
            stats.rounds += charge
        wave_stats.append(stats)
        current = next_wave

    preserver = Preserver(
        graph=graph,
        edges=frozenset(edges),
        sources=tuple(source_list),
        faults_tolerated=f,
        fault_sets_explored=launched,
    )
    return DistributedBuildResult(
        preserver=preserver,
        total_rounds=sum(s.rounds for s in wave_stats),
        wave_stats=wave_stats,
        instances=launched,
    )


def distributed_ss_preserver(
    graph: Graph,
    sources: Sequence[int],
    faults_tolerated: int,
    weights: Optional[AntisymmetricWeights] = None,
    seed: int = 0,
    max_instances: int = 5000,
    charge_enumeration: bool = False,
) -> DistributedBuildResult:
    """Distributed ``S x S`` preserver tolerating ``faults_tolerated``
    faults (Theorem 8).

    ``faults_tolerated = 1`` is Lemma 36 verbatim (one concurrent wave
    of |S| SPTs, Õ(D + |S|) measured rounds, O(|S| n) edges).  Higher
    values overlay ``faults_tolerated - 1`` fault-enumeration waves and
    rely on restorability for the extra fault (Theorem 31).
    """
    if faults_tolerated < 1:
        raise GraphError(
            f"faults_tolerated must be >= 1, got {faults_tolerated}"
        )
    if weights is None:
        weights = AntisymmetricWeights.random(
            graph, f=faults_tolerated, seed=seed
        )
    result = distributed_sv_preserver(
        graph, sources, faults_tolerated - 1,
        weights=weights, seed=seed, max_instances=max_instances,
        charge_enumeration=charge_enumeration,
    )
    preserver = Preserver(
        graph=result.preserver.graph,
        edges=result.preserver.edges,
        sources=result.preserver.sources,
        faults_tolerated=faults_tolerated,
        fault_sets_explored=result.preserver.fault_sets_explored,
    )
    return DistributedBuildResult(
        preserver=preserver,
        total_rounds=result.total_rounds,
        wave_stats=result.wave_stats,
        instances=result.instances,
    )
