"""Distributed constructions in the CONGEST model (Section 4.5).

* :mod:`repro.distributed.congest` — a synchronous message-passing
  simulator enforcing the CONGEST contract: per-round, per-direction
  edge capacity in O(log n)-bit words, with full accounting of rounds,
  messages, and edge congestion.
* :mod:`repro.distributed.bfs` — Lemma 34: distributed tie-breaking
  SPT in O(D) rounds with O(1) messages per edge, plus a delay-robust
  distance-vector variant used under concurrent scheduling.
* :mod:`repro.distributed.scheduler` — Theorem 35: the random-delay
  scheduler for running many algorithms concurrently, and its
  O(congestion + dilation * log n) bound.
* :mod:`repro.distributed.preserver` — Lemma 36 and Theorem 8:
  distributed 1/2/3-FT S×S preservers built from concurrent
  restorable-weight BFS instances.
* :mod:`repro.distributed.spanner` — Corollary 9: distributed f-FT +4
  additive spanners.
"""

from repro.distributed.congest import (
    CongestSimulator,
    NodeAlgorithm,
    RunStats,
)
from repro.distributed.bfs import (
    distributed_spt,
    LayeredBFSNode,
    ConvergingBFSNode,
)
from repro.distributed.scheduler import (
    run_concurrent_bfs,
    theorem35_bound,
)
from repro.distributed.preserver import (
    distributed_ss_preserver,
    distributed_sv_preserver,
)
from repro.distributed.spanner import distributed_ft_spanner
from repro.distributed.primitives import (
    run_broadcast,
    run_convergecast,
    run_upcast_tree_edges,
)

__all__ = [
    "run_broadcast",
    "run_convergecast",
    "run_upcast_tree_edges",
    "CongestSimulator",
    "NodeAlgorithm",
    "RunStats",
    "distributed_spt",
    "LayeredBFSNode",
    "ConvergingBFSNode",
    "run_concurrent_bfs",
    "theorem35_bound",
    "distributed_ss_preserver",
    "distributed_sv_preserver",
    "distributed_ft_spanner",
]
