"""Random-delay scheduling of concurrent algorithms (Theorem 35).

Theorem 35 (Ghaffari [20], after Leighton–Maggs–Rao [25]): ``m``
distributed algorithms, each taking at most ``d`` rounds and together
sending at most ``c`` messages through any edge, can be scheduled to
run in ``O(c + d log n)`` rounds, using random start delays.

Here that is made concrete: :func:`run_concurrent_bfs` runs one SPT
instance per source *simultaneously* on a single simulator whose edges
carry at most ``capacity_messages`` per round — overflow queues, so
contention manifests as measured extra rounds rather than model
violations.  Each instance's start is delayed by a uniform random
offset in ``[0, max_delay]``.  The benchmark compares the measured
makespan against :func:`theorem35_bound`.

Nodes use the delay-robust :class:`ConvergingBFSNode` protocol, whose
output tree is invariant under message delays (unique shortest paths),
so correctness is unaffected by the scheduling — only the round count
moves.  Tests confirm the concurrent trees equal the isolated ones.
"""

from __future__ import annotations

import math
import random
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import CongestError
from repro.graphs.base import Edge, Graph
from repro.distributed.bfs import ConvergingBFSNode, WeightFn
from repro.distributed.congest import (
    CongestSimulator,
    NodeAlgorithm,
    NodeHandle,
    RunStats,
)
from repro.spt.trees import ShortestPathTree

# An instance descriptor: (instance_id, source, fault_edges, start_delay)
Instance = Tuple[Any, int, Tuple[Edge, ...], int]


class MultiInstanceNode(NodeAlgorithm):
    """One vertex participating in many tagged SPT instances at once.

    Demultiplexes the inbox by instance tag and forwards each batch to
    the corresponding :class:`ConvergingBFSNode` sub-state.  Sources
    with a positive start delay keep themselves awake until their
    delay round arrives, then announce.
    """

    def __init__(self, vertex: int, instances: Sequence[Instance],
                 weight: WeightFn, word_bits: int):
        self.vertex = vertex
        self.subs: Dict[Any, ConvergingBFSNode] = {}
        self._pending_starts: Dict[Any, int] = {}
        for instance_id, source, faults, delay in instances:
            sub = ConvergingBFSNode(
                vertex, source, weight, word_bits,
                instance=instance_id, faults=faults,
            )
            self.subs[instance_id] = sub
            if vertex == source:
                self._pending_starts[instance_id] = delay

    def on_start(self, node: NodeHandle) -> None:
        ready = [iid for iid, d in self._pending_starts.items() if d <= 0]
        for iid in ready:
            self.subs[iid].on_start(node)
            del self._pending_starts[iid]
        if self._pending_starts:
            node.wake_next_round()

    def on_round(self, node: NodeHandle,
                 inbox: List[Tuple[int, Any, int]]) -> None:
        ready = [
            iid for iid, d in self._pending_starts.items()
            if node.round >= d
        ]
        for iid in ready:
            self.subs[iid].on_start(node)
            del self._pending_starts[iid]
        if self._pending_starts:
            node.wake_next_round()

        by_instance: Dict[Any, List[Tuple[int, Any, int]]] = {}
        for sender, payload, words in inbox:
            tag = payload[0]
            by_instance.setdefault(tag, []).append((sender, payload, words))
        for tag, batch in by_instance.items():
            sub = self.subs.get(tag)
            if sub is None:
                raise CongestError(
                    f"vertex {self.vertex} received unknown instance {tag!r}"
                )
            sub.on_round(node, batch)


def run_concurrent_instances(
    graph: Graph,
    instances: Sequence[Instance],
    weight: WeightFn,
    scale: int = 1,
    capacity_messages: int = 1,
    max_rounds: int = 1_000_000,
) -> Tuple[Dict[Any, ShortestPathTree], RunStats]:
    """Run tagged SPT instances concurrently on one shared simulator.

    Returns per-instance trees (keyed by instance id) and the combined
    :class:`RunStats` — ``stats.rounds`` is the schedule's makespan.
    """
    sim = CongestSimulator(
        graph, capacity_messages=capacity_messages, queue_excess=True
    )
    nodes = {
        v: MultiInstanceNode(v, instances, weight, sim.word_bits)
        for v in graph.vertices()
    }
    stats = sim.run(nodes, max_rounds=max_rounds)
    trees: Dict[Any, ShortestPathTree] = {}
    for instance_id, source, _faults, _delay in instances:
        parent = {}
        dist = {}
        for v in graph.vertices():
            sub = nodes[v].subs[instance_id]
            if sub.dist is not None:
                parent[v] = sub.parent
                dist[v] = sub.dist
        trees[instance_id] = ShortestPathTree(source, parent, dist, scale)
    return trees, stats


def run_concurrent_bfs(
    graph: Graph,
    sources: Sequence[int],
    weight: WeightFn,
    scale: int = 1,
    seed: int = 0,
    capacity_messages: int = 1,
    max_delay: Optional[int] = None,
) -> Tuple[Dict[int, ShortestPathTree], RunStats]:
    """σ concurrent SPTs with random start delays (Theorem 35 setup).

    ``max_delay`` defaults to σ — the congestion any edge can see is at
    most one message per instance per relaxation wave, so delays of
    that order spread the load as in the theorem's analysis.
    """
    rng = random.Random(seed)
    source_list = list(sources)
    if max_delay is None:
        max_delay = max(1, len(source_list))
    instances: List[Instance] = [
        (s, s, (), rng.randrange(0, max_delay + 1)) for s in source_list
    ]
    return run_concurrent_instances(
        graph, instances, weight, scale,
        capacity_messages=capacity_messages,
    )


def theorem35_bound(congestion: int, dilation: int, n: int) -> float:
    """The scheduling bound ``O(c + d log n)`` of Theorem 35."""
    return congestion + dilation * max(1.0, math.log2(max(n, 2)))
