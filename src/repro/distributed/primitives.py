"""Standard CONGEST communication primitives over a tree.

Textbook building blocks (Peleg [32]) used by the Section-4.5
constructions and by our fault-enumeration waves:

* **broadcast** — the root floods a value down a tree: O(depth) rounds.
* **convergecast** — leaves-to-root aggregation of per-node values
  under an associative combiner: O(depth) rounds, one message per tree
  edge.
* **pipelined upcast** — every node owns a list of items (here: its
  parent edge) and all items travel to the root, one per edge per
  round: O(depth + #items) rounds.  This is the subroutine that lets
  a source learn its own SPT's edge set before launching the next
  fault-enumeration wave (see :mod:`repro.distributed.preserver`).

All three run on the strict simulator (capacity 1, no queueing), so
their round counts are honest CONGEST costs.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.exceptions import CongestError
from repro.graphs.base import Graph
from repro.distributed.congest import (
    CongestSimulator,
    NodeAlgorithm,
    NodeHandle,
    RunStats,
)
from repro.spt.trees import ShortestPathTree


def _tree_children(tree: ShortestPathTree) -> Dict[int, List[int]]:
    children: Dict[int, List[int]] = {v: [] for v in tree.reached_vertices()}
    for v in tree.reached_vertices():
        p = tree.parent(v)
        if p is not None:
            children[p].append(v)
    return children


class BroadcastNode(NodeAlgorithm):
    """Flood ``value`` from the root down the given tree."""

    def __init__(self, vertex: int, root: int, children: List[int],
                 value: Any = None):
        self.vertex = vertex
        self.root = root
        self.children = children
        self.received: Optional[Any] = value if vertex == root else None

    def on_start(self, node: NodeHandle) -> None:
        if self.vertex == self.root:
            for c in self.children:
                node.send(c, self.received)

    def on_round(self, node: NodeHandle,
                 inbox: List[Tuple[int, Any, int]]) -> None:
        if self.received is not None or not inbox:
            return
        _sender, payload, _w = inbox[0]
        self.received = payload
        for c in self.children:
            node.send(c, payload)


class ConvergecastNode(NodeAlgorithm):
    """Aggregate per-node values to the root under ``combine``."""

    def __init__(self, vertex: int, parent: Optional[int],
                 children: List[int], value: Any,
                 combine: Callable[[Any, Any], Any]):
        self.vertex = vertex
        self.parent = parent
        self.children = children
        self.accumulated = value
        self.combine = combine
        self._pending = len(children)
        self.result: Optional[Any] = None

    def _maybe_report(self, node: NodeHandle) -> None:
        if self._pending:
            return
        if self.parent is None:
            self.result = self.accumulated
        else:
            node.send(self.parent, self.accumulated)

    def on_start(self, node: NodeHandle) -> None:
        self._maybe_report(node)  # leaves fire immediately

    def on_round(self, node: NodeHandle,
                 inbox: List[Tuple[int, Any, int]]) -> None:
        for _sender, payload, _w in inbox:
            self.accumulated = self.combine(self.accumulated, payload)
            self._pending -= 1
        self._maybe_report(node)


class UpcastNode(NodeAlgorithm):
    """Pipelined upcast: forward owned items to the root, 1/round.

    Each node starts with a list of items; every round it forwards one
    item (its own or a relayed one) to its tree parent.  The root
    collects everything in O(depth + total items) rounds with strict
    per-edge capacity 1 — the classic pipelining argument.
    """

    def __init__(self, vertex: int, parent: Optional[int],
                 items: List[Any]):
        self.vertex = vertex
        self.parent = parent
        self.outbox: List[Any] = list(items)
        self.collected: List[Any] = []

    def _pump(self, node: NodeHandle) -> None:
        if self.parent is not None and self.outbox:
            node.send(self.parent, self.outbox.pop(0))
            if self.outbox:
                node.wake_next_round()

    def on_start(self, node: NodeHandle) -> None:
        self._pump(node)

    def on_round(self, node: NodeHandle,
                 inbox: List[Tuple[int, Any, int]]) -> None:
        for _sender, payload, _w in inbox:
            if self.parent is None:
                self.collected.append(payload)
            else:
                self.outbox.append(payload)
        self._pump(node)


# ----------------------------------------------------------------------
# runners
# ----------------------------------------------------------------------
def run_broadcast(graph: Graph, tree: ShortestPathTree,
                  value: Any) -> Tuple[Dict[int, Any], RunStats]:
    """Broadcast ``value`` down ``tree``; every reached node gets it."""
    children = _tree_children(tree)
    nodes: Dict[int, NodeAlgorithm] = {}
    for v in graph.vertices():
        if v in children:
            nodes[v] = BroadcastNode(v, tree.root, children[v], value)
        else:
            nodes[v] = NodeAlgorithm()
    sim = CongestSimulator(graph, capacity_messages=1)
    stats = sim.run(nodes)
    received = {
        v: node.received for v, node in nodes.items()
        if isinstance(node, BroadcastNode)
    }
    return received, stats


def run_convergecast(graph: Graph, tree: ShortestPathTree,
                     values: Dict[int, Any],
                     combine: Callable[[Any, Any], Any]
                     ) -> Tuple[Any, RunStats]:
    """Aggregate ``values`` to the tree root under ``combine``."""
    children = _tree_children(tree)
    nodes: Dict[int, NodeAlgorithm] = {}
    for v in graph.vertices():
        if v in children:
            nodes[v] = ConvergecastNode(
                v, tree.parent(v), children[v], values[v], combine
            )
        else:
            nodes[v] = NodeAlgorithm()
    sim = CongestSimulator(graph, capacity_messages=1)
    stats = sim.run(nodes)
    root_node = nodes[tree.root]
    if root_node.result is None:
        raise CongestError("convergecast did not complete")
    return root_node.result, stats


def run_upcast_tree_edges(graph: Graph, tree: ShortestPathTree
                          ) -> Tuple[List[Any], RunStats]:
    """The root collects every tree edge by pipelined upcast.

    Used (conceptually) between fault-enumeration waves: after wave k
    the source must know its tree's edge set to name wave k+1's
    instances; this primitive prices that knowledge honestly.
    """
    children = _tree_children(tree)
    nodes: Dict[int, NodeAlgorithm] = {}
    for v in graph.vertices():
        if v in children:
            p = tree.parent(v)
            items = [] if p is None else [(min(p, v), max(p, v))]
            nodes[v] = UpcastNode(v, p, items)
        else:
            nodes[v] = NodeAlgorithm()
    sim = CongestSimulator(graph, capacity_messages=1)
    stats = sim.run(nodes)
    root_node = nodes[tree.root]
    return list(root_node.collected), stats
