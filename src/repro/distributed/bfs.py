"""Distributed tie-breaking shortest-path trees (Lemma 34).

Lemma 34: for any tie-breaking weight function ω and source ``s``, a
shortest-path tree under ω — which is simultaneously a legit BFS tree,
since ω only breaks ties — can be computed in O(D) rounds with O(1)
messages per edge.  :class:`LayeredBFSNode` implements exactly the
paper's phase protocol: vertices of BFS layer ``i`` broadcast their
weighted distance in phase ``i``; each new vertex picks the parent
minimising ``dist*(s, w) + ω(w, v)``.

Under *concurrent* scheduling (many sources, shared edge capacity —
Theorem 35's regime), layer-synchrony breaks, so
:class:`ConvergingBFSNode` provides the delay-robust distance-vector
variant: re-broadcast on improvement.  With unique shortest paths both
converge to the *same* tree; the layered protocol is cheaper, the
converging one is correct under arbitrary message delays.

Weight payloads carry exact integer distances; their size in words is
charged as ``ceil(bits / word_bits)``, so an isolation-lemma weight
function (O(f log n) bits per edge) costs O(f)-word messages, exactly
as a real CONGEST implementation would.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.graphs.base import Edge, Graph, canonical_edge
from repro.distributed.congest import (
    CongestSimulator,
    NodeAlgorithm,
    NodeHandle,
    RunStats,
)
from repro.spt.trees import ShortestPathTree

WeightFn = Callable[[int, int], int]


def _payload_words(value: int, word_bits: int) -> int:
    """Honest word count for an integer payload."""
    bits = max(1, int(value).bit_length())
    return max(1, -(-bits // word_bits))


class LayeredBFSNode(NodeAlgorithm):
    """One vertex's state in the Lemma-34 layered SPT protocol.

    Parameters
    ----------
    vertex:
        This node's id.
    source:
        The SPT root.
    weight:
        The tie-breaking arc weight ω, readable for incident edges only
        (the node never evaluates it elsewhere — locality is honoured).
    word_bits:
        Word size for payload accounting.
    instance:
        Tag carried in every message, so concurrent instances can be
        demultiplexed by :class:`MultiInstanceNode`.
    faults:
        Edges this instance must ignore (used by the FT-preserver
        constructions, where instance ``(s, e)`` operates in
        ``G \\ {e}``).  Locally checkable: a node simply refuses to
        use its faulted incident edges.
    """

    def __init__(self, vertex: int, source: int, weight: WeightFn,
                 word_bits: int, instance: Any = 0,
                 faults: Tuple[Edge, ...] = ()):
        self.vertex = vertex
        self.source = source
        self.weight = weight
        self.word_bits = word_bits
        self.instance = instance
        self.faults = frozenset(canonical_edge(u, v) for u, v in faults)
        self.dist: Optional[int] = 0 if vertex == source else None
        self.parent: Optional[int] = None
        self._announced = False

    # -- helpers -------------------------------------------------------
    def _usable(self, neighbor: int) -> bool:
        return canonical_edge(self.vertex, neighbor) not in self.faults

    def _announce(self, node: NodeHandle) -> None:
        words = _payload_words(self.dist, self.word_bits)
        for u in node.neighbors:
            if self._usable(u):
                node.send(u, (self.instance, self.dist), words)
        self._announced = True

    # -- protocol ------------------------------------------------------
    def on_start(self, node: NodeHandle) -> None:
        if self.vertex == self.source:
            self._announce(node)

    def on_round(self, node: NodeHandle,
                 inbox: List[Tuple[int, Any, int]]) -> None:
        if self.dist is not None:
            return  # settled vertices are silent after announcing
        best: Optional[Tuple[int, int]] = None
        for sender, payload, _words in inbox:
            tag, sender_dist = payload
            if tag != self.instance or not self._usable(sender):
                continue
            candidate = sender_dist + self.weight(sender, self.vertex)
            if best is None or candidate < best[0]:
                best = (candidate, sender)
        if best is not None:
            self.dist, self.parent = best
            self._announce(node)


class ConvergingBFSNode(LayeredBFSNode):
    """Delay-robust variant: re-announce whenever the estimate improves.

    Correct under arbitrary per-edge message queueing (each improvement
    propagates eventually, and with positive unique-shortest-path
    weights the final estimate is the true ``dist*``), at the cost of
    more messages.  This is the node used in the Theorem-35 concurrent
    runs where edge capacity is shared across instances.
    """

    def on_round(self, node: NodeHandle,
                 inbox: List[Tuple[int, Any, int]]) -> None:
        improved = False
        for sender, payload, _words in inbox:
            tag, sender_dist = payload
            if tag != self.instance or not self._usable(sender):
                continue
            candidate = sender_dist + self.weight(sender, self.vertex)
            if self.dist is None or candidate < self.dist:
                self.dist = candidate
                self.parent = sender
                improved = True
        if improved:
            self._announce(node)


def distributed_spt(graph: Graph, source: int, weight: WeightFn,
                    scale: int = 1,
                    faults: Tuple[Edge, ...] = (),
                    node_cls=LayeredBFSNode,
                    capacity_messages: int = 1,
                    ) -> Tuple[ShortestPathTree, RunStats]:
    """Run one SPT instance on the simulator; return tree and stats.

    With :class:`LayeredBFSNode` and capacity 1 this realises Lemma 34:
    O(D) rounds, O(1) messages per edge — both visible in the returned
    :class:`RunStats` and asserted in the tests.
    """
    sim = CongestSimulator(graph, capacity_messages=capacity_messages)
    nodes = {
        v: node_cls(v, source, weight, sim.word_bits, faults=faults)
        for v in graph.vertices()
    }
    stats = sim.run(nodes)
    parent = {
        v: nodes[v].parent
        for v in graph.vertices()
        if nodes[v].dist is not None
    }
    dist = {
        v: nodes[v].dist
        for v in graph.vertices()
        if nodes[v].dist is not None
    }
    tree = ShortestPathTree(source, parent, dist, scale)
    return tree, stats
