"""Routing tables and MPLS-style restoration (Sections 1-2).

A consistent tiebreaking scheme can be encoded as a *routing table*: a
matrix whose ``(s, t)`` entry holds the next hop on the selected
``s ~> t`` path (Section 2, second bullet).  :class:`RoutingTable`
builds that matrix from any consistent scheme and routes by repeated
next-hop lookup.

:class:`MplsRouter` is the application sketched in the introduction:
carry *two* tables — one for the scheme ``pi`` and one for its reverse
``pi-bar`` — and restore a failed path by scanning midpoints ``x`` and
concatenating the ``s ~> x`` route from the first table with the
``x ~> t`` route from the second, accepting the shortest concatenation
that avoids the fault.  With a restorable scheme this label-switching
procedure is guaranteed to find a true replacement shortest path
(Theorem 2); no shortest-path recomputation happens at restore time.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.exceptions import DisconnectedError, GraphError, RestorationError
from repro.graphs.base import Edge, canonical_edge
from repro.spt.bfs import UNREACHABLE, bfs_distances
from repro.spt.paths import Path, join_at_midpoint


class RoutingTable:
    """Next-hop matrix encoding of a consistent tiebreaking scheme.

    ``table.next_hop(s, t)`` is the vertex after ``s`` on the selected
    ``s ~> t`` path, or ``None`` when ``s == t`` or ``t`` is
    unreachable.  ``route(s, t)`` replays hops to rebuild the full path;
    with a consistent scheme this reproduces ``scheme.path(s, t)``
    exactly (the converse direction the paper highlights).
    """

    def __init__(self, next_hops: Dict[Tuple[int, int], int], n: int):
        self._next = dict(next_hops)
        self._n = n

    @classmethod
    def from_scheme(cls, scheme) -> "RoutingTable":
        """Materialise the table from any scheme with ``tree()``.

        Note the construction consults only the per-source trees —
        exactly the information a router per source would hold.
        """
        graph = scheme.graph
        next_hops: Dict[Tuple[int, int], int] = {}
        for s in graph.vertices():
            tree = scheme.tree(s)
            for t in tree.reached_vertices():
                if t != s:
                    next_hops[(s, t)] = tree.next_hop(t)
        return cls(next_hops, graph.n)

    @property
    def n(self) -> int:
        return self._n

    def next_hop(self, s: int, t: int) -> Optional[int]:
        if s == t:
            return None
        return self._next.get((s, t))

    def route(self, s: int, t: int) -> Path:
        """Rebuild the full selected path by chaining next hops."""
        hops = [s]
        current = s
        seen = {s}
        while current != t:
            step = self.next_hop(current, t)
            if step is None:
                raise DisconnectedError(s, t)
            if step in seen:
                raise GraphError(
                    f"routing loop at {step} while routing {s} -> {t}; "
                    "the source scheme was not consistent"
                )
            seen.add(step)
            hops.append(step)
            current = step
        return Path(hops)

    def entries(self) -> int:
        """Number of populated (s, t) cells."""
        return len(self._next)

    def diff(self, other: "RoutingTable") -> Dict[Tuple[int, int], Tuple]:
        """Cells that differ between two tables: ``{(s,t): (old, new)}``.

        ``None`` marks an absent cell (unreachable destination).
        """
        changed: Dict[Tuple[int, int], Tuple] = {}
        keys = set(self._next) | set(other._next)
        for key in keys:
            old = self._next.get(key)
            new = other._next.get(key)
            if old != new:
                changed[key] = (old, new)
        return changed

    def __repr__(self) -> str:
        return f"RoutingTable(n={self._n}, entries={len(self._next)})"


def fault_patch(scheme, fault: Edge) -> Dict[Tuple[int, int], Tuple]:
    """The routing-table delta a single link failure requires.

    The paper's motivation asks for restoration with "easy-to-implement
    changes to the routing table".  With a *stable* scheme the patch is
    exactly the cells whose selected path used the failed edge — this
    function computes it as the diff between the fault-free table and
    the table of ``pi(.,.|e)``, and the test-suite confirms stability
    keeps every untouched-path cell out of the patch.

    Returns ``{(s, t): (old_next_hop, new_next_hop)}`` (``None`` =
    destination now unreachable).
    """
    fault = canonical_edge(*fault)
    graph = scheme.graph
    before: Dict[Tuple[int, int], int] = {}
    after: Dict[Tuple[int, int], int] = {}
    for s in graph.vertices():
        tree0 = scheme.tree(s)
        tree1 = scheme.tree(s, [fault])
        for t in tree0.reached_vertices():
            if t != s:
                before[(s, t)] = tree0.next_hop(t)
        for t in tree1.reached_vertices():
            if t != s:
                after[(s, t)] = tree1.next_hop(t)
    table_before = RoutingTable(before, graph.n)
    table_after = RoutingTable(after, graph.n)
    return table_before.diff(table_after)


class MplsRouter:
    """Two-table MPLS restoration per the paper's introduction.

    Parameters
    ----------
    scheme:
        A tiebreaking scheme (restorable for guaranteed success).  Two
        artifacts are precomputed from its non-faulty selections only:
        the forward routing table for ``pi`` and, for each destination
        ``x``, the selected-path hop distances — the contents of the
        second ("reverse") table ``pi-bar(x, t) = reverse(pi(t, x))``.

    At restore time the router never re-runs a shortest-path algorithm:
    it scans midpoints, filters those whose two table paths avoid the
    fault, and label-switches the concatenation.
    """

    def __init__(self, scheme):
        self._scheme = scheme
        self._graph = scheme.graph
        # pi(s, x) for all s, x — the forward table's path store; the
        # reverse table pi-bar is read as reversed forward paths.
        self._trees = {
            s: scheme.tree(s) for s in self._graph.vertices()
        }

    @property
    def graph(self):
        return self._graph

    def primary_path(self, s: int, t: int) -> Path:
        """The working (pre-fault) selected ``s ~> t`` path."""
        tree = self._trees[s]
        if not tree.reaches(t):
            raise DisconnectedError(s, t)
        return tree.path_to(t)

    def restore(self, s: int, t: int, failed_edge: Edge) -> Path:
        """Reroute ``s ~> t`` around one failed edge by concatenation.

        Scans midpoints ``x``; accepts the shortest concatenation
        ``pi(s, x) . pi-bar(x, t)`` avoiding the fault, then validates
        it is a true replacement shortest path.  Raises
        :class:`RestorationError` if the scan's best is suboptimal —
        which Theorem 2 rules out for restorable schemes.
        """
        failed = canonical_edge(*failed_edge)
        primary = self.primary_path(s, t)
        if not primary.uses_edge(failed):
            return primary  # nothing failed on the working path
        view = self._graph.without([failed])
        target = bfs_distances(view, s)[t]
        if target == UNREACHABLE:
            raise DisconnectedError(s, t, [failed])

        from repro.core.restoration import tree_fault_free_vertices

        good_s = tree_fault_free_vertices(self._trees[s], [failed])
        good_t = tree_fault_free_vertices(self._trees[t], [failed])
        candidates = good_s & good_t
        if not candidates:
            raise RestorationError(
                f"no midpoint survives fault {failed} for {s} -> {t}"
            )
        best = min(
            candidates,
            key=lambda x: (
                self._trees[s].hop_distance(x)
                + self._trees[t].hop_distance(x),
                x,
            ),
        )
        path = join_at_midpoint(
            self._trees[s].path_to(best), self._trees[t].path_to(best)
        )
        if path.hops != target:
            raise RestorationError(
                f"concatenation for {s} -> {t} under {failed} has "
                f"{path.hops} hops but replacement distance is {target}; "
                "the scheme is not restorable"
            )
        return path

    def restore_all_on_path(self, s: int, t: int) -> Dict[Edge, Path]:
        """Replacement path for every edge of the working ``s ~> t`` path.

        The single-pair replacement-paths workload, answered purely from
        the routing tables.
        """
        primary = self.primary_path(s, t)
        out: Dict[Edge, Path] = {}
        for edge in primary.edges():
            try:
                out[edge] = self.restore(s, t, edge)
            except DisconnectedError:
                continue
        return out

    def __repr__(self) -> str:
        return f"MplsRouter(n={self._graph.n}, scheme={self._scheme.name})"
