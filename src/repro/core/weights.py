"""Antisymmetric tiebreaking weight (ATW) functions — Definition 18.

An ATW function ``r`` assigns each directed arc a perturbation with
``r(u, v) = -r(v, u)`` such that in the reweighted graph ``G*`` (arc
weight ``1 + r(u, v)``) every node pair has a *unique* shortest path
even after removing any ``<= f`` edges, and those unique paths are
shortest paths of the unweighted graph.

Exact-integer convention
------------------------
The paper works in the real-RAM model with ``|r| < 1/(2n)``.  We scale
everything by an integer ``scale`` so that an arc of ``G*`` weighs
``scale + r_int(u, v)`` with ``|r_int| < scale / (2n)``; a simple path
of ``k`` hops then weighs within ``(k - 1/2, k + 1/2)`` hops-worth of
weight and its hop count is recoverable as ``round(weight / scale)``.
All three constructions from the paper are provided:

* :meth:`AntisymmetricWeights.random` — Corollary 22's isolation-lemma
  weights: ``r`` drawn from ``2W + 1`` values with ``W = n**(f+4+c)``,
  hence ``O(f log n)`` bits per edge and f-fault tiebreaking w.h.p.
* :meth:`AntisymmetricWeights.deterministic` — Theorem 23's geometric
  weights ``sign(u - v) * C**(-i)``: deterministic, ``O(|E|)`` bits.
* :meth:`AntisymmetricWeights.uniform` — Theorem 20's random reals,
  emulated at a caller-chosen resolution (probability-1 uniqueness
  becomes w.h.p. at 128-bit resolution).

Uniqueness is never just assumed: :meth:`verify_tiebreaking` certifies
it exactly via :func:`repro.spt.dijkstra.count_min_weight_paths`.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import GraphError, TiebreakingError
from repro.graphs.base import Edge, Graph, canonical_edge
from repro.spt.bfs import UNREACHABLE, bfs_distances
from repro.spt.dijkstra import count_min_weight_paths


class AntisymmetricWeights:
    """An exact-integer ATW function over a fixed graph.

    Parameters
    ----------
    graph:
        The undirected unweighted base graph.
    perturbation:
        Map from *canonical* edges ``(u, v), u < v`` to the integer
        ``r_int(u, v)`` (the value on the low-to-high orientation; the
        reverse orientation is its negation).
    scale:
        Weight units per hop.  Must satisfy
        ``max |r_int| < scale / (2n)``, checked at construction.
    name:
        Human-readable tag for reports ("random", "deterministic", ...).
    """

    __slots__ = ("_graph", "_r", "_scale", "_name")

    def __init__(self, graph: Graph, perturbation: Dict[Edge, int],
                 scale: int, name: str = "custom"):
        n = max(graph.n, 1)
        for edge in graph.edges():
            if edge not in perturbation:
                raise TiebreakingError(f"missing perturbation for {edge}")
        for edge, value in perturbation.items():
            if edge != canonical_edge(*edge):
                raise TiebreakingError(
                    f"perturbation keys must be canonical, got {edge}"
                )
            if abs(value) * 2 * n >= scale:
                raise TiebreakingError(
                    f"|r{edge}| = {abs(value)} is not < scale/(2n) "
                    f"= {scale}/(2*{n})"
                )
        self._graph = graph
        self._r = dict(perturbation)
        self._scale = scale
        self._name = name

    # ------------------------------------------------------------------
    # constructions from the paper
    # ------------------------------------------------------------------
    @classmethod
    def random(cls, graph: Graph, f: int = 1, seed: int = 0,
               c: int = 2) -> "AntisymmetricWeights":
        """Corollary 22: isolation-lemma integer weights.

        Draws each ``r(u, v)`` uniformly from the ``2W + 1`` integers
        ``{-W, ..., W}`` with ``W = n**(f + 4 + c)``, so each value
        needs ``O(f log n)`` bits, and sets ``scale = 2 n (W + 1)``.
        With probability ``>= 1 - 1/n**c`` the result f-fault
        tiebreaks (unique shortest paths under every ``|F| <= f``).
        """
        if f < 0:
            raise TiebreakingError(f"f must be >= 0, got {f}")
        n = max(graph.n, 2)
        big_w = n ** (f + 4 + c)
        rng = random.Random(seed)
        perturbation = {
            edge: rng.randint(-big_w, big_w) for edge in graph.edges()
        }
        scale = 2 * n * (big_w + 1)
        return cls(graph, perturbation, scale, name=f"random(f={f})")

    @classmethod
    def deterministic(cls, graph: Graph, base: int = 4
                      ) -> "AntisymmetricWeights":
        """Theorem 23: deterministic geometric weights.

        Edge ``i`` (1-indexed in canonical lexicographic order) gets
        ``r(u, v) = sign(u - v) * base**(m - i)`` on the arc ``(u, v)``
        (so the canonical low-to-high orientation carries the negative
        sign, matching ``sign(u - v)`` with ``u < v``).  ``base >= 4``
        makes the geometric series strictly dominated by its leading
        term, which is what forces unique shortest paths for *every*
        fault set simultaneously — no randomness, ``O(|E|)`` bits.
        """
        if base < 4:
            raise TiebreakingError(
                f"base must be >= 4 for strict domination, got {base}"
            )
        edges = sorted(graph.edges())
        m = len(edges)
        # sign(u - v) with u < v is -1 on the canonical orientation.
        perturbation = {
            edge: -(base ** (m - i)) for i, edge in enumerate(edges, start=1)
        }
        n = max(graph.n, 2)
        scale = 2 * n * base ** m
        return cls(graph, perturbation, scale, name="deterministic")

    @classmethod
    def uniform(cls, graph: Graph, seed: int = 0,
                resolution_bits: int = 128) -> "AntisymmetricWeights":
        """Theorem 20: random "real" weights, at finite resolution.

        The paper samples reals from ``[-eps, eps]``; reals do not exist
        on hardware, so we sample integers from a ``resolution_bits``-
        wide window.  At 128 bits the collision probability over all
        ``O(n**2 * m**f)`` comparisons is negligible for any graph this
        library can hold in memory; this substitution is recorded in
        DESIGN.md.
        """
        rng = random.Random(seed)
        half = 1 << resolution_bits
        perturbation = {
            edge: rng.randint(-half, half) for edge in graph.edges()
        }
        n = max(graph.n, 2)
        scale = 2 * n * (half + 1)
        return cls(graph, perturbation, scale, name="uniform")

    # ------------------------------------------------------------------
    # the weight function of G*
    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        return self._graph

    @property
    def scale(self) -> int:
        """Integer weight of one unperturbed hop."""
        return self._scale

    @property
    def name(self) -> str:
        return self._name

    def r(self, u: int, v: int) -> int:
        """The antisymmetric perturbation ``r_int(u, v)`` on an arc."""
        edge = canonical_edge(u, v)
        if edge not in self._r:
            raise GraphError(f"({u}, {v}) is not an edge of the graph")
        value = self._r[edge]
        return value if (u, v) == edge else -value

    def weight(self, u: int, v: int) -> int:
        """Arc weight in ``G*``: ``scale + r_int(u, v)`` (always > 0)."""
        return self._scale + self.r(u, v)

    def __call__(self, u: int, v: int) -> int:
        return self.weight(u, v)

    def hops_of_weight(self, total: int) -> int:
        """Recover the hop count of a simple path from its total weight."""
        return (total + self._scale // 2) // self._scale

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def bits_per_edge(self) -> int:
        """Maximum bits needed to store one perturbation value.

        Corollary 22 promises ``O(f log n)``; Theorem 23's geometric
        weights cost ``O(|E|)``.  The benchmark
        ``bench_thm20_weights.py`` tabulates this quantity.
        """
        return max(
            (abs(v).bit_length() + 1 for v in self._r.values()), default=1
        )

    def verify_antisymmetry(self) -> bool:
        """Check ``r(u, v) == -r(v, u)`` on every arc (true by storage)."""
        return all(
            self.r(u, v) == -self.r(v, u) for u, v in self._graph.arcs()
        )

    def tiebreaking_violations(
        self,
        fault_sets: Optional[Iterable[Sequence[Edge]]] = None,
        sources: Optional[Iterable[int]] = None,
    ) -> List[Tuple]:
        """Exactly certify the f-fault tiebreaking property (Def 18).

        For each fault set, runs Dijkstra in ``G* \\ F`` from each
        source and checks (a) the minimum-weight path to every reachable
        vertex is *unique*, and (b) its hop count equals the unweighted
        distance in ``G \\ F``.  Returns a list of violation tuples
        ``(fault_set, source, vertex, kind)``; empty means certified.

        ``fault_sets`` defaults to the empty set plus every single edge;
        callers wanting ``f >= 2`` certification pass larger sets (see
        :func:`repro.graphs.generators.fault_sample`).
        """
        if fault_sets is None:
            fault_sets = [()] + [(e,) for e in self._graph.edges()]
        if sources is None:
            sources = list(self._graph.vertices())
        violations: List[Tuple] = []
        for faults in fault_sets:
            view = self._graph.without(faults)
            for s in sources:
                counts = count_min_weight_paths(view, s, self.weight)
                hops = bfs_distances(view, s)
                from repro.spt.dijkstra import dijkstra

                dist, _ = dijkstra(view, s, self.weight)
                for v, cnt in counts.items():
                    if cnt != 1:
                        violations.append((tuple(faults), s, v, "tie"))
                for v, d in dist.items():
                    recovered = self.hops_of_weight(d)
                    if hops[v] == UNREACHABLE or recovered != hops[v]:
                        violations.append(
                            (tuple(faults), s, v, "not-shortest")
                        )
        return violations

    def verify_tiebreaking(self, **kwargs) -> bool:
        """True when :meth:`tiebreaking_violations` finds nothing."""
        return not self.tiebreaking_violations(**kwargs)

    def __repr__(self) -> str:
        return (
            f"AntisymmetricWeights(name={self._name!r}, "
            f"m={self._graph.m}, bits/edge={self.bits_per_edge()})"
        )
