"""Brute-force verifiers for the RPTS coordination properties.

Definitions 13-17 of the paper define four coordination properties —
symmetry, consistency, stability, restorability — and the paper's
results are statements about which combinations are achievable.  This
module decides each property *exactly* on concrete instances, which is
what lets the test-suite confirm Theorem 19 (ATW schemes are stable +
consistent + f-restorable), Theorem 37 (no symmetric scheme on C4 is
1-restorable, by exhausting all symmetric schemes), and the Figure-1
claim (BFS tiebreaking is consistent yet non-restorable).

All checkers work against the generic scheme interface
(``path(s, t, faults)``) so they apply to weighted, BFS, and explicit
table schemes alike.  They return *violation lists* (empty = property
holds) so failures are debuggable; thin boolean wrappers sit on top.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import GraphError
from repro.graphs.base import Edge, Graph, canonical_edge
from repro.spt.bfs import UNREACHABLE, bfs_distances
from repro.spt.paths import Path


def _all_pairs(graph) -> Iterator[Tuple[int, int]]:
    for s in graph.vertices():
        for t in graph.vertices():
            if s != t:
                yield (s, t)


# ----------------------------------------------------------------------
# Definition 13 — symmetry
# ----------------------------------------------------------------------
def symmetry_violations(scheme, faults: Sequence[Edge] = (),
                        pairs: Optional[Iterable[Tuple[int, int]]] = None
                        ) -> List[Tuple[int, int]]:
    """Pairs where ``path(s, t)`` is not the reverse of ``path(t, s)``."""
    graph = scheme.graph
    if pairs is None:
        pairs = [(s, t) for s, t in _all_pairs(graph) if s < t]
    bad = []
    for s, t in pairs:
        forward = scheme.path(s, t, faults)
        backward = scheme.path(t, s, faults)
        if forward is None and backward is None:
            continue
        if (forward is None) != (backward is None):
            bad.append((s, t))
        elif forward.vertices != backward.reverse().vertices:
            bad.append((s, t))
    return bad


def is_symmetric(scheme, faults: Sequence[Edge] = (), **kwargs) -> bool:
    return not symmetry_violations(scheme, faults, **kwargs)


# ----------------------------------------------------------------------
# Definition 14 — consistency
# ----------------------------------------------------------------------
def consistency_violations(scheme, faults: Sequence[Edge] = (),
                           pairs: Optional[Iterable[Tuple[int, int]]] = None
                           ) -> List[Tuple[int, int, int, int]]:
    """Quadruples ``(s, t, u, v)`` breaking the subpath property.

    For each selected path ``pi(s, t)`` and vertices ``u`` before ``v``
    on it, ``pi(u, v)`` must equal the contiguous ``u..v`` slice of
    ``pi(s, t)``.
    """
    graph = scheme.graph
    if pairs is None:
        pairs = list(_all_pairs(graph))
    bad = []
    for s, t in pairs:
        path = scheme.path(s, t, faults)
        if path is None:
            continue
        verts = path.vertices
        for i in range(len(verts)):
            for j in range(i + 1, len(verts)):
                u, v = verts[i], verts[j]
                sub = scheme.path(u, v, faults)
                if sub is None or sub.vertices != verts[i: j + 1]:
                    bad.append((s, t, u, v))
    return bad


def is_consistent(scheme, faults: Sequence[Edge] = (), **kwargs) -> bool:
    return not consistency_violations(scheme, faults, **kwargs)


# ----------------------------------------------------------------------
# Definition 16 — stability
# ----------------------------------------------------------------------
def stability_violations(
    scheme,
    base_fault_sets: Optional[Iterable[Sequence[Edge]]] = None,
    pairs: Optional[Iterable[Tuple[int, int]]] = None,
    extra_edges: Optional[Iterable[Edge]] = None,
) -> List[Tuple]:
    """Instances where adding an off-path fault changed the selection.

    For each base fault set ``F`` (default: just the empty set, i.e.
    certifying 1-stability), pair ``(s, t)``, and edge ``g`` not on
    ``pi(s, t | F)``, require ``pi(s, t | F + g) == pi(s, t | F)``.
    ``extra_edges`` restricts which ``g`` are tried (default: all).
    """
    graph = scheme.graph
    if base_fault_sets is None:
        base_fault_sets = [()]
    if pairs is None:
        pairs = list(_all_pairs(graph))
    all_edges = list(extra_edges) if extra_edges is not None else list(
        graph.edges()
    )
    bad = []
    for base in base_fault_sets:
        base_set = {canonical_edge(u, v) for u, v in base}
        for s, t in pairs:
            selected = scheme.path(s, t, base)
            if selected is None:
                continue
            on_path = selected.edge_set()
            for g in all_edges:
                g = canonical_edge(*g)
                if g in on_path or g in base_set:
                    continue
                after = scheme.path(s, t, tuple(base_set | {g}))
                if after is None or after.vertices != selected.vertices:
                    bad.append((tuple(sorted(base_set)), s, t, g))
    return bad


def is_stable(scheme, **kwargs) -> bool:
    return not stability_violations(scheme, **kwargs)


# ----------------------------------------------------------------------
# Definition 17 — f-restorability
# ----------------------------------------------------------------------
def restorability_violations(
    scheme,
    fault_sets: Optional[Iterable[Sequence[Edge]]] = None,
    pairs: Optional[Iterable[Tuple[int, int]]] = None,
) -> List[Tuple]:
    """Instances ``(F, s, t)`` where no midpoint concatenation is optimal.

    The generic (scheme-interface-only) check of Definition 17: for each
    nonempty ``F`` and connected pair, search all proper subsets
    ``F' ⊊ F`` and all midpoints ``x`` for a concatenation
    ``pi(s, x | F') . reverse(pi(t, x | F'))`` avoiding ``F`` of length
    ``dist_{G \\ F}(s, t)``.  Empty result = f-restorable over the given
    fault universe.

    ``fault_sets`` defaults to all single edges (1-restorability).
    """
    graph = scheme.graph
    if fault_sets is None:
        fault_sets = [(e,) for e in graph.edges()]
    if pairs is None:
        pairs = [(s, t) for s, t in _all_pairs(graph) if s < t]
    bad = []
    for faults in fault_sets:
        fault_set = {canonical_edge(u, v) for u, v in faults}
        if not fault_set:
            raise GraphError("restorability needs nonempty fault sets")
        view = graph.without(fault_set)
        dist_after: Dict[int, List[int]] = {}
        for s, t in pairs:
            if s not in dist_after:
                dist_after[s] = bfs_distances(view, s)
            target = dist_after[s][t]
            if target == UNREACHABLE:
                continue
            if not _has_optimal_concatenation(
                scheme, s, t, fault_set, target
            ):
                bad.append((tuple(sorted(fault_set)), s, t))
    return bad


def _has_optimal_concatenation(scheme, s: int, t: int,
                               fault_set: set, target: int) -> bool:
    fault_list = sorted(fault_set)
    for size in range(len(fault_list)):
        for subset in itertools.combinations(fault_list, size):
            for x in scheme.graph.vertices():
                p1 = scheme.path(s, x, subset)
                p2 = scheme.path(t, x, subset)
                if p1 is None or p2 is None:
                    continue
                if p1.hops + p2.hops != target:
                    continue
                if p1.avoids(fault_set) and p2.avoids(fault_set):
                    return True
    return False


def is_restorable(scheme, **kwargs) -> bool:
    return not restorability_violations(scheme, **kwargs)


# ----------------------------------------------------------------------
# scheme enumeration (Appendix A)
# ----------------------------------------------------------------------
def all_shortest_paths(graph, s: int, t: int,
                       limit: int = 100_000) -> List[Path]:
    """Every shortest ``s ~> t`` path, by backtracking the BFS DAG.

    Intended for small graphs; raises :class:`GraphError` past
    ``limit`` paths as a guard against exponential blowup.
    """
    dist = bfs_distances(graph, s)
    if dist[t] == UNREACHABLE:
        return []
    paths: List[Path] = []

    # Walk the shortest-path DAG from t back toward s, emitting each
    # complete predecessor chain as a path.
    def collect(v: int, acc: List[int]) -> None:
        if len(paths) > limit:
            raise GraphError(f"more than {limit} shortest paths")
        acc.append(v)
        if v == s:
            paths.append(Path(list(reversed(acc))))
        else:
            for u in graph.sorted_neighbors(v):
                if dist[u] == dist[v] - 1:
                    collect(u, acc)
        acc.pop()

    collect(t, [])
    return paths


def enumerate_symmetric_schemes(graph, limit: int = 1_000_000
                                ) -> Iterator["ExplicitScheme"]:
    """Yield every *symmetric* tiebreaking scheme of a small graph.

    One shortest path is chosen per unordered pair and mirrored onto
    both orientations (Definition 13).  The number of schemes is the
    product of per-pair tie counts; a :class:`GraphError` guards
    against enumerating more than ``limit``.
    """
    from repro.core.scheme import ExplicitScheme

    pair_choices: List[Tuple[Tuple[int, int], List[Path]]] = []
    total = 1
    for s in graph.vertices():
        for t in graph.vertices():
            if s < t:
                options = all_shortest_paths(graph, s, t)
                if options:
                    pair_choices.append(((s, t), options))
                    total *= len(options)
                    if total > limit:
                        raise GraphError(
                            f"more than {limit} symmetric schemes"
                        )
    keys = [pair for pair, _ in pair_choices]
    option_lists = [options for _, options in pair_choices]
    for selection in itertools.product(*option_lists):
        table: Dict[Tuple[int, int], Path] = {}
        for (s, t), path in zip(keys, selection):
            table[(s, t)] = path
            table[(t, s)] = path.reverse()
        yield ExplicitScheme(graph, table, name="symmetric-enum")


def theorem37_holds_on(graph) -> bool:
    """Appendix A / Theorem 37: no symmetric scheme is 1-restorable.

    Exhaustively enumerates every symmetric tiebreaking scheme of the
    graph and checks 1-restorability of each; True when *all* of them
    fail (the impossibility the paper proves for ``C4``).
    """
    for scheme in enumerate_symmetric_schemes(graph):
        if is_restorable(scheme):
            return False
    return True
