"""Restoration-by-concatenation and the restoration lemmas.

This module realises the algorithmic content of the paper's main
theorem.  Given an f-restorable RPTS ``pi`` (Definition 17), a failed
path is restored *without recomputing shortest paths*: scan midpoints
``x`` and proper fault subsets ``F' ⊊ F``, concatenate the already-
selected paths ``pi(s, x | F')`` and ``reverse(pi(t, x | F'))``, and
keep the shortest concatenation avoiding ``F``.  Theorem 2 guarantees
the scan finds a true replacement shortest path when the scheme came
from an antisymmetric tiebreaking weight function; Figure 1 (and the
``bench_fig1_sensitivity`` benchmark) shows the same scan failing for
innocent-looking BFS tiebreaking.

Also here: decision procedures for the original restoration lemma
(Theorem 1) and the weighted restoration lemma (Theorem 11), used by
the test-suite as independent ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterable, List, Optional, Set, Tuple

from repro.exceptions import DisconnectedError, RestorationError
from repro.graphs.base import Edge, canonical_edge
from repro.graphs.csr import fast_without
from repro.spt.bfs import UNREACHABLE, bfs_distances
from repro.spt.paths import Path, join_at_midpoint
from repro.spt.trees import ShortestPathTree


def tree_fault_free_vertices(tree: ShortestPathTree,
                             faults: Iterable[Edge]) -> Set[int]:
    """Vertices whose selected root-path avoids every fault edge.

    A vertex's tree path avoids ``F`` iff its parent's does and its
    parent edge is not in ``F`` — one linear pass over the tree instead
    of extracting each path, which is what makes the midpoint scan
    O(n) per tree rather than O(n^2).
    """
    fault_set = {canonical_edge(u, v) for u, v in faults}
    good: Set[int] = set()
    # Process vertices in increasing hop distance so parents settle
    # first; the order is cached on the (immutable) tree, so repeated
    # scans over many fault sets pay no re-sort.
    for v in tree.vertices_by_hop():
        p = tree.parent(v)
        if p is None:
            good.add(v)
        elif p in good and canonical_edge(p, v) not in fault_set:
            good.add(v)
    return good


@dataclass(frozen=True)
class RestorationResult:
    """Outcome of a successful restoration-by-concatenation.

    Attributes
    ----------
    path:
        The restored ``s ~> t`` replacement shortest path.
    midpoint:
        The vertex ``x`` whose two selected paths were concatenated.
    subset:
        The proper fault subset ``F'`` under which the two paths were
        selected (empty for single faults).
    candidates:
        Number of midpoint candidates that survived the fault filter.
    """

    path: Path
    midpoint: int
    subset: Tuple[Edge, ...]
    candidates: int


def midpoint_scan(scheme, s: int, t: int, faults: Iterable[Edge],
                  subset: Iterable[Edge] = (),
                  fault_free=tree_fault_free_vertices
                  ) -> Optional[RestorationResult]:
    """One round of the scan: fixed subset ``F'``, all midpoints ``x``.

    Returns the best (shortest) concatenation avoiding ``faults`` among
    ``pi(s, x | F') . reverse(pi(t, x | F'))`` over all ``x``, or
    ``None`` when no midpoint survives.  No optimality check is done
    here — callers compare against the true replacement distance.

    ``fault_free`` is the ``(tree, faults) -> set`` provider of
    fault-free vertex sets; the default recomputes per call, while the
    scenario engine injects its cached
    :class:`~repro.scenarios.engine.TreeFaultIndex` lookup.  This is
    the single implementation of the scan — batch layers parameterise
    it rather than duplicating it.
    """
    fault_set = {canonical_edge(u, v) for u, v in faults}
    tree_s = scheme.tree(s, subset)
    tree_t = scheme.tree(t, subset)
    remaining = fault_set - {canonical_edge(u, v) for u, v in subset}
    good_s = fault_free(tree_s, remaining)
    good_t = fault_free(tree_t, remaining)
    candidates = good_s & good_t
    if not candidates:
        return None
    best_x = min(
        candidates,
        key=lambda x: (tree_s.hop_distance(x) + tree_t.hop_distance(x), x),
    )
    path = join_at_midpoint(tree_s.path_to(best_x), tree_t.path_to(best_x))
    return RestorationResult(
        path=path,
        midpoint=best_x,
        subset=tuple(sorted(subset)),
        candidates=len(candidates),
    )


def restore_by_concatenation(scheme, s: int, t: int,
                             faults: Iterable[Edge]) -> RestorationResult:
    """Restore the ``s ~> t`` shortest path under fault set ``F``.

    Implements Definition 17 operationally: scans proper subsets
    ``F' ⊊ F`` in increasing size and midpoints ``x``, returning the
    first concatenation that achieves the true replacement distance
    ``dist_{G \\ F}(s, t)``.

    Raises
    ------
    DisconnectedError
        If ``faults`` disconnects ``s`` from ``t``.
    RestorationError
        If no concatenation is optimal — impossible for a
        :class:`~repro.core.scheme.RestorableTiebreaking` (Theorem 2),
        and precisely the observable failure mode for schemes that are
        not restorable.
    """
    fault_list = sorted({canonical_edge(u, v) for u, v in faults})
    if not fault_list:
        raise RestorationError("fault set must be nonempty (Definition 17)")
    view = fast_without(scheme.graph, fault_list)
    dist_after = bfs_distances(view, s)
    target = dist_after[t]
    if target == UNREACHABLE:
        raise DisconnectedError(s, t, fault_list)

    best: Optional[RestorationResult] = None
    for size in range(len(fault_list)):
        for subset in combinations(fault_list, size):
            result = midpoint_scan(scheme, s, t, fault_list, subset)
            if result is None:
                continue
            if result.path.hops == target:
                return result
            if best is None or result.path.hops < best.path.hops:
                best = result
    achieved = best.path.hops if best is not None else None
    raise RestorationError(
        f"no concatenation restores {s} ~> {t} under faults "
        f"{fault_list}: need {target} hops, best concatenation "
        f"{achieved}"
    )


# ----------------------------------------------------------------------
# The restoration lemmas as decision procedures
# ----------------------------------------------------------------------
def verify_restoration_lemma(graph, s: int, t: int, e: Edge) -> bool:
    """Theorem 1 (Afek et al.): decide its guarantee for one instance.

    True iff there exists a vertex ``x`` with

    * ``dist_G(s, x) + dist_G(t, x) == dist_{G \\ e}(s, t)``, and
    * removing ``e`` preserves both ``dist(s, x)`` and ``dist(t, x)``
      (equivalently, *some* original shortest ``s ~> x`` and ``t ~> x``
      paths avoid ``e``).

    The paper proves this always holds in undirected unweighted graphs
    whenever ``s`` and ``t`` stay connected; the test-suite confirms it
    over full fault/pair sweeps.
    """
    e = canonical_edge(*e)
    view = fast_without(graph, [e])
    dist_after_s = bfs_distances(view, s)
    if dist_after_s[t] == UNREACHABLE:
        return True  # nothing to restore; lemma is vacuous
    target = dist_after_s[t]
    dist_s = bfs_distances(graph, s)
    dist_t = bfs_distances(graph, t)
    dist_after_t = bfs_distances(view, t)
    for x in graph.vertices():
        if dist_s[x] == UNREACHABLE or dist_t[x] == UNREACHABLE:
            continue
        if dist_s[x] + dist_t[x] != target:
            continue
        if dist_after_s[x] == dist_s[x] and dist_after_t[x] == dist_t[x]:
            return True
    return False


def verify_weighted_restoration_lemma(graph, s: int, t: int, e: Edge) -> bool:
    """Theorem 11: decide the *weighted* restoration lemma's guarantee.

    True iff there exists an edge ``(u, v)`` of ``G \\ e`` such that
    ``dist(s, u) + 1 + dist(v, t) == dist_{G \\ e}(s, t)`` and **no**
    shortest ``s ~> u`` or ``v ~> t`` path uses ``e`` — so *any* choice
    of those shortest paths concatenates into a valid replacement path,
    exactly the tiebreaking-insensitive guarantee of Theorem 11
    (specialised to unit weights).
    """
    e = canonical_edge(*e)
    a, b = e
    view = fast_without(graph, [e])
    dist_after_s = bfs_distances(view, s)
    if dist_after_s[t] == UNREACHABLE:
        return True
    target = dist_after_s[t]
    dist_s = bfs_distances(graph, s)
    dist_t = bfs_distances(graph, t)
    dist_a = bfs_distances(graph, a)
    dist_b = bfs_distances(graph, b)

    def some_shortest_path_uses_e(d_from: List[int], origin_dist: int,
                                  x: int) -> bool:
        """Does any shortest path (origin ~> x) traverse ``e=(a,b)``?"""
        if origin_dist == UNREACHABLE or d_from[x] == UNREACHABLE:
            return False
        via_ab = (d_from[a] != UNREACHABLE and dist_b[x] != UNREACHABLE
                  and d_from[a] + 1 + dist_b[x] == d_from[x])
        via_ba = (d_from[b] != UNREACHABLE and dist_a[x] != UNREACHABLE
                  and d_from[b] + 1 + dist_a[x] == d_from[x])
        return via_ab or via_ba

    for u, v in graph.arcs():
        if canonical_edge(u, v) == e:
            continue
        if dist_s[u] == UNREACHABLE or dist_t[v] == UNREACHABLE:
            continue
        if dist_s[u] + 1 + dist_t[v] != target:
            continue
        if some_shortest_path_uses_e(dist_s, dist_s[u], u):
            continue
        if some_shortest_path_uses_e(dist_t, dist_t[v], v):
            continue
        return True
    return False
