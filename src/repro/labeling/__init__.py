"""Fault-tolerant exact distance labeling (Theorem 30).

* :mod:`repro.labeling.scheme` — assign each vertex a bitstring label
  of ``O(n^{2-1/2^f} log n)`` bits such that ``dist_{G \\ F}(s, t)``
  for ``|F| <= f + 1`` is recoverable from the labels of ``s`` and
  ``t`` alone (no edge labels, no global state).
"""

from repro.labeling.scheme import DistanceLabeling, VertexLabel

__all__ = ["DistanceLabeling", "VertexLabel"]
