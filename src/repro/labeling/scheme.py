"""Fault-tolerant exact distance labels (Theorem 30).

The construction is the paper's: the label of vertex ``v`` is an
explicit encoding of the edges of an f-FT ``{v} x V`` preserver built
with a restorable RPTS.  To answer ``dist_{G \\ F}(s, t)`` for
``|F| <= f + 1``, union the two decoded preservers, delete ``F``, and
run BFS — restorability guarantees some optimal replacement path is the
concatenation of a path in ``s``'s preserver and a path in ``t``'s
preserver, so the union preserves the distance (proof of Theorem 30).

Labels are genuine bitstrings: each edge is packed into
``2 * ceil(log2 n)`` bits, preceded by a fixed-width header (vertex id
and edge count).  :meth:`VertexLabel.bits` is therefore an honest
measurement of the ``O(n^{2-1/2^f} log n)`` bound that
``bench_thm30_labels`` tabulates.  Decoding uses *only* the label —
the query path never touches the original graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.exceptions import LabelingError
from repro.graphs.base import Edge, Graph, canonical_edge
from repro.core.scheme import RestorableTiebreaking
from repro.preservers.ft_bfs import ft_sv_preserver
from repro.spt.bfs import bfs_distances


def _bits_for(n: int) -> int:
    """Bits needed to address one of ``n`` vertices."""
    return max(1, (n - 1).bit_length())


class _BitWriter:
    """Append-only bit buffer with fixed-width integer writes."""

    def __init__(self):
        self._value = 0
        self._bits = 0

    def write(self, value: int, width: int) -> None:
        if value < 0 or value >= (1 << width):
            raise LabelingError(f"{value} does not fit in {width} bits")
        self._value = (self._value << width) | value
        self._bits += width

    def to_bytes(self) -> Tuple[bytes, int]:
        nbytes = (self._bits + 7) // 8
        padded = self._value << (nbytes * 8 - self._bits)
        return padded.to_bytes(nbytes, "big"), self._bits


class _BitReader:
    """Sequential fixed-width reads over a packed bit buffer."""

    def __init__(self, data: bytes, total_bits: int):
        self._value = int.from_bytes(data, "big") >> (
            len(data) * 8 - total_bits if data else 0
        )
        self._remaining = total_bits

    def read(self, width: int) -> int:
        if width > self._remaining:
            raise LabelingError("label truncated")
        self._remaining -= width
        return (self._value >> self._remaining) & ((1 << width) - 1)


@dataclass(frozen=True)
class VertexLabel:
    """One vertex's label: a packed bitstring plus its bit length."""

    vertex: int
    data: bytes
    bits: int

    @classmethod
    def encode(cls, vertex: int, n: int, edges: Iterable[Edge]
               ) -> "VertexLabel":
        """Pack ``(vertex, n, |E_H|, E_H)`` into a bitstring."""
        edge_list = sorted(edges)
        width = _bits_for(n)
        writer = _BitWriter()
        writer.write(n, 32)
        writer.write(vertex, width)
        writer.write(len(edge_list), 32)
        for u, v in edge_list:
            writer.write(u, width)
            writer.write(v, width)
        data, bits = writer.to_bytes()
        return cls(vertex=vertex, data=data, bits=bits)

    def decode(self) -> Tuple[int, int, List[Edge]]:
        """Unpack to ``(n, vertex, edges)`` — label-only, no graph."""
        reader = _BitReader(self.data, self.bits)
        n = reader.read(32)
        width = _bits_for(n)
        vertex = reader.read(width)
        count = reader.read(32)
        edges = []
        for _ in range(count):
            u = reader.read(width)
            v = reader.read(width)
            edges.append((u, v))
        return n, vertex, edges


class DistanceLabeling:
    """An (f+1)-FT exact distance labeling of one graph (Theorem 30).

    Build once with :meth:`build`; query with the *static* method
    :meth:`query`, which sees only two labels and the fault set —
    faithfully modelling the distributed-label setting (the instance
    itself is just a label store).
    """

    def __init__(self, labels: Dict[int, VertexLabel], f: int):
        self._labels = dict(labels)
        self._f = f

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, graph: Graph, f: int = 0, seed: int = 0,
              scheme: Optional[RestorableTiebreaking] = None,
              max_fault_sets: Optional[int] = None) -> "DistanceLabeling":
        """Label every vertex of ``graph`` against ``f + 1`` faults.

        ``f`` is the overlay depth: the label of ``v`` encodes an f-FT
        ``{v} x V`` preserver, and queries tolerate ``|F| <= f + 1``.
        """
        if scheme is None:
            scheme = RestorableTiebreaking.build(graph, f=f + 1, seed=seed)
        labels: Dict[int, VertexLabel] = {}
        for v in graph.vertices():
            preserver = ft_sv_preserver(
                scheme, [v], f, max_fault_sets=max_fault_sets
            )
            labels[v] = VertexLabel.encode(v, graph.n, preserver.edges)
        return cls(labels, f)

    # ------------------------------------------------------------------
    @property
    def faults_tolerated(self) -> int:
        """Queries are exact for fault sets up to this size."""
        return self._f + 1

    def label(self, v: int) -> VertexLabel:
        if v not in self._labels:
            raise LabelingError(f"no label for vertex {v}")
        return self._labels[v]

    def label_bits(self, v: int) -> int:
        return self.label(v).bits

    def max_label_bits(self) -> int:
        """The scheme's label size — the quantity Theorem 30 bounds."""
        return max(label.bits for label in self._labels.values())

    def total_bits(self) -> int:
        return sum(label.bits for label in self._labels.values())

    # ------------------------------------------------------------------
    @staticmethod
    def query(label_s: VertexLabel, label_t: VertexLabel,
              faults: Iterable[Edge] = ()) -> int:
        """``dist_{G \\ F}(s, t)`` from the two labels alone.

        Decodes both preservers, unions them, removes ``F``, and runs
        BFS.  Returns ``-1`` when the faults disconnect the pair.
        """
        n_s, s, edges_s = label_s.decode()
        n_t, t, edges_t = label_t.decode()
        if n_s != n_t:
            raise LabelingError(
                f"labels from different graphs (n={n_s} vs n={n_t})"
            )
        fault_set = {canonical_edge(u, v) for u, v in faults}
        union = Graph(n_s)
        for u, v in edges_s:
            if canonical_edge(u, v) not in fault_set:
                union.add_edge(u, v)
        for u, v in edges_t:
            if canonical_edge(u, v) not in fault_set:
                union.add_edge(u, v)
        return bfs_distances(union, s)[t]

    def distance(self, s: int, t: int, faults: Iterable[Edge] = ()) -> int:
        """Instance-level convenience wrapper around :meth:`query`."""
        if s == t:
            return 0
        return self.query(self.label(s), self.label(t), faults)

    def __repr__(self) -> str:
        return (
            f"DistanceLabeling(vertices={len(self._labels)}, "
            f"faults_tolerated={self.faults_tolerated}, "
            f"max_bits={self.max_label_bits()})"
        )
