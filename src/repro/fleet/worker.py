"""The fleet worker: one process, one warm session per tenant.

A worker is a long-lived child process running :func:`worker_main` —
it builds one :class:`~repro.query.session.Session` per
:class:`~repro.fleet.protocol.TenantSpec` at init (paying graph CSR
construction and warm-start base vectors exactly once) and then
serves requests off its pipe until shutdown.  Keeping the process
alive across requests is the whole point: the engines' LRU memos
survive between shards, so the fleet's aggregate cache is the *sum*
of the workers' budgets — the resource-pooling idiom the fleet exists
for.

The request dispatch itself lives in :func:`serve_request`, a plain
function over a ``{tenant: Session}`` dict with no process machinery
in it.  The registry's in-process serial fallback calls the very same
function, so a degraded fleet answers with identical semantics (and
identical ``worker``-stamped provenance) to a healthy one.
"""

from __future__ import annotations

import dataclasses
import traceback
from typing import Any, Dict, List, Tuple

from repro import obs as _obs
from repro.fleet.protocol import (
    WORD_BYTES,
    CapacityReport,
    ErrorReply,
    ExecuteReply,
    ExecuteRequest,
    InitRequest,
    JobReply,
    JobRequest,
    PingRequest,
    PongReply,
    ReadyReply,
    Reply,
    ReportReply,
    ReportRequest,
    Request,
    ShutdownRequest,
    TenantSpec,
)
from repro.query.queries import Answer
from repro.query.session import Session

__all__ = ["build_sessions", "serve_request", "worker_main"]


def build_sessions(tenants: Tuple[TenantSpec, ...]
                   ) -> Dict[str, Session]:
    """Build one warm session per tenant spec.

    Each tenant gets its own engine with its own ``memoize`` budget —
    per-tenant eviction isolation — and its ``warm_sources`` base
    vectors are computed eagerly so the first real query finds them
    cached.
    """
    sessions: Dict[str, Session] = {}
    for spec in tenants:
        session = Session(spec.graph, scheme=spec.scheme,
                          memoize=spec.memoize, delta=spec.delta)
        for source in spec.warm_sources:
            session.engine.base_distances(source)
        sessions[spec.name] = session
    return sessions


def _stamp(answers: List[Answer], worker: str) -> Tuple[Answer, ...]:
    """Return the answers with ``provenance.worker`` set to ``worker``."""
    return tuple(
        dataclasses.replace(
            a, provenance=dataclasses.replace(a.provenance, worker=worker)
        )
        for a in answers
    )


def _capacity(worker: str,
              sessions: Dict[str, Session]) -> CapacityReport:
    """Price the worker's caches in the fleet accounting currency.

    Every LRU entry — pair or vector — is booked at one dense vector
    of its tenant (``n * WORD_BYTES``): a deliberate upper bound that
    keeps the number monotone in real footprint and cheap to compute.
    ``wave_bytes`` is the largest tenant's vector, the booked cost of
    one dispatched-but-unreported wave.
    """
    total = 0
    used = 0
    wave = 0
    tenants: List[Tuple[str, int]] = []
    for name, session in sorted(sessions.items()):
        vector_bytes = session.engine.csr.n * WORD_BYTES
        info = session.cache_info()
        tenant_used = info.size * vector_bytes
        total += info.maxsize * vector_bytes
        used += tenant_used
        wave = max(wave, vector_bytes)
        tenants.append((name, tenant_used))
    return CapacityReport(worker=worker, total_bytes=total,
                          used_bytes=used, wave_bytes=wave,
                          tenants=tuple(tenants))


def _serve_execute(worker: str, sessions: Dict[str, Session],
                   request: ExecuteRequest) -> ExecuteReply:
    """Answer one shard, tracing it when the request carries a context.

    A traced request turns recording on in this process (sticky — the
    parent flipped its own switch, and a worker cannot be asked to
    forget mid-stream without losing the engine-side wave spans), and
    the shard runs under a ``worker.execute`` span parented to the
    carried context.  The worker's finished spans ride home on the
    reply, leaving its buffer drained.
    """
    ctx = _obs.TraceContext.from_dict(request.trace)
    traced = ctx is not None
    if traced and not _obs.ENABLED:
        _obs.enable()
    session = sessions[request.tenant]
    with _obs.activate(ctx):
        with _obs.span("worker.execute", worker=worker,
                       tenant=request.tenant,
                       queries=len(request.queries)):
            answers = session.answer(list(request.queries),
                                     scheme=request.scheme)
    # The session recorded its stats before the worker stamp existed
    # on the answers, so the by_worker tally is booked here — the one
    # place that knows the worker's name.
    if answers:
        session.stats.by_worker[worker] = (
            session.stats.by_worker.get(worker, 0) + len(answers))
    if _obs.ENABLED:
        _obs.inc("repro_worker_answers_total", len(answers),
                 worker=worker, tenant=request.tenant)
    spans: Tuple[Any, ...] = (
        tuple(_obs.take_spans()) if traced else ())
    return ExecuteReply(worker=worker, answers=_stamp(answers, worker),
                        spans=spans)


def serve_request(worker: str, sessions: Dict[str, Session],
                  request: Request) -> Reply:
    """Serve one request against the tenant sessions (pure dispatch).

    Raises whatever the underlying session raises —
    :func:`worker_main` flattens exceptions into
    :class:`~repro.fleet.protocol.ErrorReply` at the process boundary,
    while the registry's serial fallback lets them propagate directly
    (it *is* the parent process).  A :class:`KeyError`-grade protocol
    mistake (unknown tenant, unknown job method) raises
    :class:`~repro.exceptions.FleetError` by way of the caller-side
    validation in :class:`~repro.fleet.session.FleetSession`, so here
    it is an invariant violation and raised as ``KeyError``.
    """
    if isinstance(request, (PingRequest, ShutdownRequest)):
        return PongReply(worker=worker)
    if isinstance(request, ReportRequest):
        return ReportReply(
            worker=worker,
            capacity=_capacity(worker, sessions),
            cache_infos=tuple(
                (name, s.cache_info())
                for name, s in sorted(sessions.items())
            ),
            stats=tuple(
                (name, s.stats) for name, s in sorted(sessions.items())
            ),
        )
    if isinstance(request, ExecuteRequest):
        return _serve_execute(worker, sessions, request)
    if isinstance(request, JobRequest):
        session = sessions[request.tenant]
        method = getattr(session, request.method)
        value = method(*request.args, **dict(request.kwargs))
        return JobReply(worker=worker, value=value)
    raise TypeError(f"unhandled fleet request: {request!r}")


def worker_main(worker: str, conn: Any) -> None:
    """The child-process loop: recv a request, send exactly one reply.

    The first message must be an
    :class:`~repro.fleet.protocol.InitRequest`; everything after is
    served by :func:`serve_request`.  Exceptions never tear the
    channel — they are flattened into
    :class:`~repro.fleet.protocol.ErrorReply` and the loop keeps
    going, so one poisonous query stream cannot take the worker's warm
    caches down with it.  The loop ends on
    :class:`~repro.fleet.protocol.ShutdownRequest` (after replying) or
    a closed pipe.
    """
    sessions: Dict[str, Session] = {}
    try:
        while True:
            try:
                request = conn.recv()
            except (EOFError, OSError):
                break
            try:
                if isinstance(request, InitRequest):
                    sessions = build_sessions(request.tenants)
                    reply: Reply = ReadyReply(
                        worker=worker, tenants=tuple(sorted(sessions))
                    )
                else:
                    reply = serve_request(worker, sessions, request)
            except BaseException as exc:  # noqa: BLE001 — boundary
                reply = ErrorReply(worker=worker,
                                   exc_type=type(exc).__name__,
                                   message=str(exc),
                                   traceback=traceback.format_exc())
            try:
                conn.send(reply)
            except (BrokenPipeError, OSError):
                break
            if isinstance(request, ShutdownRequest):
                break
    finally:
        conn.close()
