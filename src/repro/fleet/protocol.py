"""The fleet wire protocol: pickle-clean messages, nothing else.

Everything that crosses a worker boundary is a frozen dataclass
defined here, built only from values that round-trip through
:mod:`pickle` under the ``spawn`` start method — plain containers,
typed queries/answers (:mod:`repro.query.queries`), graphs, and the
frozen :class:`~repro.scenarios.engine.CacheInfo` /
:class:`~repro.query.session.SessionStats` reports.  That contract is
what lets the same protocol serve processes today and machines by a
serialised transport later (the seam named in ROADMAP item 2), and it
is pinned by the spawn-safety suite in ``tests/test_fleet.py``.

One request, one reply, in order: a worker serves messages strictly
sequentially, so the parent-side registry can account for in-flight
work per worker without a correlation id.  Worker-side failures never
tear the channel — they come back as an :class:`ErrorReply` carrying
the exception type name and traceback text (exception *objects* are
not reliably picklable), and :func:`raise_reply` re-raises the
closest :mod:`repro.exceptions` type on the parent side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

from repro.exceptions import FleetError

__all__ = [
    "WORD_BYTES",
    "TenantSpec",
    "CapacityReport",
    "Request",
    "InitRequest",
    "ExecuteRequest",
    "JobRequest",
    "ReportRequest",
    "PingRequest",
    "ShutdownRequest",
    "Reply",
    "ReadyReply",
    "ExecuteReply",
    "JobReply",
    "ReportReply",
    "PongReply",
    "ErrorReply",
    "raise_reply",
    "request_weight",
]

#: Accounting width of one cached distance cell.  Capacity numbers are
#: an *accounting currency* (comparable across workers, monotone in
#: real footprint), not an RSS measurement: a cached vector of a
#: ``n``-vertex tenant is booked as ``n * WORD_BYTES``.
WORD_BYTES = 8


@dataclass(frozen=True)
class TenantSpec:
    """Everything a worker needs to host one tenant graph.

    ``memoize`` is the tenant's *eviction budget*: each worker builds
    the tenant's engine with this LRU capacity, so a noisy tenant can
    evict only its own entries, never a neighbour's.  ``warm_sources``
    are base-vector origins the worker computes once at init (before
    any query arrives), the warm-start idiom for monitored sources.
    ``scheme`` rides along for restoration queries and must itself be
    picklable (schemes over the tenant graph are).
    """

    name: str
    graph: Any
    memoize: int = 4096
    delta: bool = True
    scheme: Any = None
    warm_sources: Tuple[int, ...] = ()


@dataclass(frozen=True)
class CapacityReport:
    """A worker's capacity self-report — the pod-accounting payload.

    ``total_bytes`` is what the worker's caches may grow to (the sum
    of per-tenant LRU budgets priced at one vector per entry),
    ``used_bytes`` what they currently hold, and ``wave_bytes`` the
    booked cost of one in-flight wave (the largest tenant's vector
    footprint) — the parent adds ``in_flight * wave_bytes`` on top of
    ``used_bytes`` when deciding whether the worker has room, since
    dispatched-but-uncollected work will land in the caches it has
    not reported yet.
    """

    worker: str
    total_bytes: int
    used_bytes: int
    wave_bytes: int
    tenants: Tuple[Tuple[str, int], ...] = ()


@dataclass(frozen=True)
class Request:
    """Base marker for parent → worker messages."""


@dataclass(frozen=True)
class InitRequest(Request):
    """First message on a fresh channel: build the tenant sessions.

    Sent over the connection rather than passed as process arguments,
    so the tenant payload crosses the pickle seam under *every* start
    method — ``fork`` included — and a spec that would not survive
    ``spawn`` fails loudly everywhere.
    """

    tenants: Tuple[TenantSpec, ...]


@dataclass(frozen=True)
class ExecuteRequest(Request):
    """Answer a shard of typed queries for one tenant.

    ``trace`` is an optional observability context
    (:class:`~repro.obs.trace.TraceContext`, or its ``to_dict`` form)
    carried across the process boundary so worker-side spans parent to
    the caller's trace.  It defaults to ``None`` — untraced requests
    pickle byte-compatibly with the pre-obs protocol — and workers
    treat anything malformed as "untraced", never as an error.
    """

    tenant: str
    queries: Tuple[Any, ...]
    scheme: Any = None
    trace: Any = None


@dataclass(frozen=True)
class JobRequest(Request):
    """Run a session facade method outside the query algebra
    (``preserver_violations``, ``midpoint_scan``) on one tenant."""

    tenant: str
    method: str
    args: Tuple[Any, ...] = ()
    kwargs: Tuple[Tuple[str, Any], ...] = ()


@dataclass(frozen=True)
class ReportRequest(Request):
    """Ask for capacity + per-tenant cache/stats snapshots."""


@dataclass(frozen=True)
class PingRequest(Request):
    """Health probe."""


@dataclass(frozen=True)
class ShutdownRequest(Request):
    """Orderly exit; the worker replies once, then leaves its loop."""


@dataclass(frozen=True)
class Reply:
    """Base of worker → parent messages; every reply names its worker."""

    worker: str


@dataclass(frozen=True)
class ReadyReply(Reply):
    tenants: Tuple[str, ...]


@dataclass(frozen=True)
class ExecuteReply(Reply):
    """Answers plus (for traced requests) the worker's finished span
    records — plain dicts, drained from the worker's buffer so the
    parent can :func:`repro.obs.ingest` them into one export."""

    answers: Tuple[Any, ...]
    spans: Tuple[Any, ...] = ()


@dataclass(frozen=True)
class JobReply(Reply):
    value: Any


@dataclass(frozen=True)
class ReportReply(Reply):
    capacity: CapacityReport
    cache_infos: Tuple[Tuple[str, Any], ...]
    stats: Tuple[Tuple[str, Any], ...]


@dataclass(frozen=True)
class PongReply(Reply):
    """Answer to :class:`PingRequest` and :class:`ShutdownRequest`."""


@dataclass(frozen=True)
class ErrorReply(Reply):
    """A worker-side exception, flattened to picklable text."""

    exc_type: str
    message: str
    traceback: str = ""


def raise_reply(reply: Reply) -> Reply:
    """Pass a normal reply through; re-raise an :class:`ErrorReply`.

    The worker-side exception type is resolved by name against
    :mod:`repro.exceptions`, so a :class:`~repro.exceptions.QueryError`
    raised by a worker's planner surfaces as a ``QueryError`` on the
    parent side (the validation contract callers already handle);
    anything unresolvable becomes a :class:`FleetError` carrying the
    original type name and traceback text.
    """
    if not isinstance(reply, ErrorReply):
        return reply
    import repro.exceptions as _exc

    exc_class = getattr(_exc, reply.exc_type, None)
    if isinstance(exc_class, type) and issubclass(exc_class,
                                                  _exc.ReproError):
        raise exc_class(reply.message)
    raise FleetError(
        f"worker {reply.worker} failed with {reply.exc_type}: "
        f"{reply.message}\n{reply.traceback}"
    )


def request_weight(request: Request) -> int:
    """How much in-flight work a request books against its worker.

    Queries count individually (an :class:`ExecuteRequest` of 500
    queries occupies more of a worker than a ping); control messages
    count one.
    """
    if isinstance(request, ExecuteRequest):
        return max(1, len(request.queries))
    return 1
