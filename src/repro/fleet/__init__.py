"""The engine fleet: multi-process scenario execution with
capacity-accounted routing.

One in-process :class:`~repro.query.session.Session` is bounded by
one LRU budget and one interpreter.  The fleet layer pools both: a
:class:`~repro.fleet.session.FleetSession` shards query streams over
a registry of persistent worker processes, each holding warm
per-tenant engines, so the deployment's effective cache is the *sum*
of the workers' budgets and shards execute concurrently.  The moving
parts, bottom up:

* :mod:`repro.fleet.protocol` — the pickle-clean message vocabulary
  (spawn-safe by contract);
* :mod:`repro.fleet.worker` — the child-process loop, one warm
  session per tenant;
* :mod:`repro.fleet.registry` — worker lifecycle, capacity
  accounting with an over-commit ratio, respawn and in-process
  serial fallback;
* :mod:`repro.fleet.router` — cache-affine sharding (by canonical
  fault set, or by source range for vector-heavy streams);
* :mod:`repro.fleet.session` — the ``Session``-shaped facade with
  merged :class:`~repro.scenarios.engine.CacheInfo` /
  :class:`~repro.query.session.SessionStats` reports.

Import from here::

    from repro.fleet import FleetSession

The root :mod:`repro` package deliberately does not re-export the
fleet: importing it pulls in :mod:`multiprocessing`, which consumers
of the plain in-process API never need.
"""

from repro.fleet.protocol import CapacityReport, TenantSpec
from repro.fleet.registry import WorkerCapacity, WorkerRegistry
from repro.fleet.router import Router, fault_hash
from repro.fleet.session import FleetSession

__all__ = [
    "CapacityReport",
    "FleetSession",
    "Router",
    "TenantSpec",
    "WorkerCapacity",
    "WorkerRegistry",
    "fault_hash",
]
