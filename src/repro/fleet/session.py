""":class:`FleetSession` — the :class:`~repro.query.session.Session`
surface, served by a sharded fleet of engine workers.

A fleet session speaks the exact submit/gather/answer/answer_async
dialect of the in-process session, but behind the facade each batch
is sharded by the :class:`~repro.fleet.router.Router` over the
capacity-eligible workers of a :class:`~repro.fleet.registry.WorkerRegistry`
and executed in parallel processes, each holding warm per-tenant
engines.  Reports merge: :meth:`cache_info` folds every worker's
:class:`~repro.scenarios.engine.CacheInfo` with
:meth:`~repro.scenarios.engine.CacheInfo.merge`, and :attr:`stats`
folds per-worker :class:`~repro.query.session.SessionStats` with
:meth:`~repro.query.session.SessionStats.merge` — so the fleet reads
like one big session whose cache is the sum of its workers' budgets.

Multi-tenancy: pass ``graphs={"name": graph, ...}`` (optionally with
per-tenant ``budgets``) instead of a single ``graph``; every worker
hosts every tenant with its own eviction budget, and ``tenant=``
selects whose stream a call answers (default: the sole tenant, or
``"default"``).
"""

from __future__ import annotations

import asyncio
import functools
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro import obs as _obs
from repro.exceptions import FleetError, QueryError
from repro.fleet.protocol import (
    ErrorReply,
    ExecuteReply,
    ExecuteRequest,
    ReportReply,
    TenantSpec,
    raise_reply,
)
from repro.fleet.registry import WorkerCapacity, WorkerRegistry
from repro.fleet.router import Router
from repro.query.queries import (Answer, MidpointQuery, PreserverQuery,
                                 Query)
from repro.query.session import SessionStats
from repro.scenarios.engine import CacheInfo

__all__ = ["FleetSession"]

_DEFAULT_TENANT = "default"


class FleetSession:
    """Shard typed query streams across persistent engine workers.

    Parameters
    ----------
    graph:
        Single-tenant convenience: the base graph, hosted under the
        tenant name ``"default"``.  Mutually exclusive with ``graphs``.
    graphs:
        Multi-tenant form: ``{tenant_name: graph}``.
    budgets:
        Per-tenant LRU budget overrides, ``{tenant_name: entries}``;
        tenants not listed get ``memoize``.
    workers:
        Fleet size (>= 1); ``workers=1`` is a valid degenerate fleet
        (one warm process, no sharding) useful for A/B runs.
    scheme:
        Default tiebreaking scheme, applied to every tenant
        (single-tenant form only — multi-tenant fleets set schemes
        per tenant via restoration-free streams or per-call
        ``scheme=``, which is pickled and shipped with the shard).
    memoize, delta:
        Engine construction knobs, per worker per tenant (see
        :class:`~repro.scenarios.engine.ScenarioEngine`).
    over_commit:
        Capacity over-commit ratio (see
        :class:`~repro.fleet.registry.WorkerCapacity`).
    policy:
        Routing policy — ``"auto"``, ``"faults"`` or ``"source"``
        (see :class:`~repro.fleet.router.Router`).
    start_method:
        ``multiprocessing`` start method for the workers (``None`` =
        platform default, ``"spawn"`` exercises the full pickle seam).
    warm_sources:
        Base-vector origins each worker computes at init: a sequence
        (applied to every tenant) or ``{tenant_name: sequence}``.

    Example
    -------
    >>> from repro.graphs import generators
    >>> from repro.query import DistanceQuery
    >>> from repro.fleet import FleetSession
    >>> with FleetSession(generators.grid(4, 4), workers=2) as fleet:
    ...     fleet.submit(DistanceQuery(0, 15, faults=[(0, 1)]))
    ...     [a.value for a in fleet.gather()]
    [6]
    """

    def __init__(self, graph: Any = None, *,
                 graphs: Optional[Mapping[str, Any]] = None,
                 budgets: Optional[Mapping[str, int]] = None,
                 workers: int = 2,
                 scheme: Any = None,
                 memoize: int = 4096,
                 delta: bool = True,
                 over_commit: float = 1.0,
                 policy: str = "auto",
                 start_method: Optional[str] = None,
                 warm_sources: Union[Sequence[int],
                                     Mapping[str, Sequence[int]]] = ()
                 ) -> None:
        if (graph is None) == (graphs is None):
            raise FleetError(
                "FleetSession takes a graph or graphs={...}, "
                "exactly one of the two"
            )
        if graphs is None:
            graphs = {_DEFAULT_TENANT: graph}
        budgets = dict(budgets or {})
        unknown = set(budgets) - set(graphs)
        if unknown:
            raise FleetError(
                f"budgets name tenants that have no graph: "
                f"{sorted(unknown)}"
            )
        specs: List[TenantSpec] = []
        self._routers: Dict[str, Router] = {}
        self._graphs: Dict[str, Any] = dict(graphs)
        for name, tenant_graph in graphs.items():
            if isinstance(warm_sources, Mapping):
                warm: Tuple[int, ...] = tuple(
                    warm_sources.get(name, ()))
            else:
                warm = tuple(warm_sources)
            specs.append(TenantSpec(
                name=name, graph=tenant_graph,
                memoize=budgets.get(name, memoize), delta=delta,
                scheme=scheme, warm_sources=warm,
            ))
            self._routers[name] = Router(
                policy, n=int(getattr(tenant_graph, "n", 0) or 0)
            )
        self.scheme = scheme
        self.registry = WorkerRegistry(
            specs, workers=workers, over_commit=over_commit,
            start_method=start_method,
        )
        self._pending: List[Tuple[str, Query]] = []
        self._gathers = 0
        # Same serialization contract as Session: answer_async runs
        # gathers in executor threads, and the registry's pipes and
        # in-flight book are not thread-safe.
        self._gather_lock = threading.Lock()
        # Lazily created single-thread executor for answer_async —
        # same rationale as Session: gathers serialize on the lock,
        # so one worker thread is the facade's true concurrency.
        self._async_executor: Optional[ThreadPoolExecutor] = None
        self._async_lock = threading.Lock()

    # ------------------------------------------------------------------
    # the declarative surface
    # ------------------------------------------------------------------
    @property
    def tenants(self) -> Tuple[str, ...]:
        return tuple(self._graphs)

    @property
    def graph(self) -> Any:
        """The sole tenant's graph (single-tenant convenience);
        multi-tenant fleets raise — name the tenant via
        :meth:`tenant_graph`."""
        if len(self._graphs) != 1:
            raise FleetError(
                f"fleet hosts {len(self._graphs)} tenants "
                f"({sorted(self._graphs)}); use tenant_graph(name)"
            )
        return next(iter(self._graphs.values()))

    def tenant_graph(self, tenant: str) -> Any:
        return self._graphs[self._tenant(tenant)]

    @property
    def pending(self) -> int:
        """Queries submitted but not yet gathered (all tenants)."""
        return len(self._pending)

    def submit(self, *queries: Any,
               tenant: Optional[str] = None) -> "FleetSession":
        """Queue queries for the next :meth:`gather` — the
        :meth:`Session.submit` contract (query or iterable arguments,
        all-or-nothing staging, chainable), plus ``tenant=``."""
        name = self._tenant(tenant)
        staged: List[Query] = []
        for q in queries:
            if isinstance(q, Query):
                staged.append(q)
                continue
            try:
                items = iter(q)
            except TypeError:
                raise QueryError(
                    f"submit() takes queries or iterables of "
                    f"queries, got {q!r}"
                ) from None
            staged.extend(items)
        self._pending.extend((name, q) for q in staged)
        return self

    def gather(self, scheme: Any = None) -> List[Answer]:
        """Answer everything queued, in submission order.

        Like :meth:`Session.gather`, the queue is drained even when a
        shard fails, so one malformed stream cannot poison the next
        gather.
        """
        batch, self._pending = self._pending, []
        return self._run(batch, scheme)

    def answer(self, queries: Iterable[Query], scheme: Any = None, *,
               tenant: Optional[str] = None) -> List[Answer]:
        """One-shot :meth:`Session.answer` (queue untouched)."""
        name = self._tenant(tenant)
        return self._run([(name, q) for q in queries], scheme)

    def answer_one(self, query: Query, scheme: Any = None, *,
                   tenant: Optional[str] = None) -> Answer:
        return self.answer([query], scheme, tenant=tenant)[0]

    async def answer_async(self, queries: Iterable[Query],
                           scheme: Any = None, *,
                           tenant: Optional[str] = None) -> List[Answer]:
        """Awaitable :meth:`answer`; overlapping awaits serialize on
        the fleet's gather lock, like :meth:`Session.answer_async`,
        and queue on one session-owned worker thread rather than
        occupying a default-executor thread each."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._executor(),
            functools.partial(self.answer, list(queries), scheme,
                              tenant=tenant),
        )

    def _executor(self) -> ThreadPoolExecutor:
        with self._async_lock:
            if self._async_executor is None:
                self._async_executor = ThreadPoolExecutor(
                    max_workers=1,
                    thread_name_prefix="repro-fleet",
                )
            return self._async_executor

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _run(self, batch: List[Tuple[str, Query]],
             scheme: Any) -> List[Answer]:
        self._validate(batch)
        if not batch:
            return []
        with self._gather_lock:
            answers: List[Optional[Answer]] = [None] * len(batch)
            first_error: Optional[ErrorReply] = None
            with _obs.span("fleet.gather", queries=len(batch)):
                for tenant in dict.fromkeys(name for name, _ in batch):
                    indices = [i for i, (name, _) in enumerate(batch)
                               if name == tenant]
                    error = self._run_tenant(
                        tenant, [batch[i][1] for i in indices], indices,
                        scheme, answers,
                    )
                    if first_error is None and error is not None:
                        first_error = error
            self._gathers += 1
            if first_error is not None:
                raise_reply(first_error)
        return [a for a in answers if a is not None]

    def _run_tenant(self, tenant: str, queries: List[Query],
                    indices: List[int], scheme: Any,
                    answers: List[Optional[Answer]]
                    ) -> Optional[ErrorReply]:
        """Shard one tenant's sub-batch; fill ``answers`` in place.

        Returns the first :class:`ErrorReply` instead of raising, so a
        multi-tenant gather finishes every healthy tenant before the
        caller surfaces the failure (the drained-queue contract).
        """
        self.registry.start()
        eligible = self.registry.routing_candidates()
        shards = self._routers[tenant].shard(queries, eligible)
        # When tracing, every shard request carries the caller's
        # current context so worker-side spans (worker.execute and the
        # engine waves under it) parent into one cross-process trace.
        trace = None
        if _obs.ENABLED:
            ctx = _obs.current_context()
            trace = ctx.to_dict() if ctx is not None else None
        assignments = {
            worker: ExecuteRequest(
                tenant=tenant,
                queries=tuple(queries[i] for i in local),
                scheme=scheme,
                trace=trace,
            )
            for worker, local in shards.items()
        }
        replies = self.registry.dispatch(assignments)
        first_error: Optional[ErrorReply] = None
        for worker, local in shards.items():
            reply = replies[worker]
            if isinstance(reply, ErrorReply):
                if first_error is None:
                    first_error = reply
                continue
            if not isinstance(reply, ExecuteReply):
                raise FleetError(
                    f"worker {worker} answered execute with {reply!r}"
                )
            if reply.spans:
                _obs.ingest(reply.spans)
            for local_i, answer in zip(local, reply.answers):
                answers[indices[local_i]] = answer
            if _obs.ENABLED:
                _obs.observe("repro_fleet_shard_size",
                             float(len(local)), worker=worker,
                             tenant=tenant)
        return first_error

    def _validate(self, batch: List[Tuple[str, Query]]) -> None:
        """Stream-level checks that sharding would otherwise split.

        Workers re-validate their own shards (unknown vertices, bad
        schemes — per-shard properties), but *mixed* ``weighted=``
        declarations are a property of the whole stream: two
        contradictory queries could land on different workers and
        each shard would look internally consistent.  So the one
        cross-shard invariant is enforced here, parent-side, exactly
        as :meth:`~repro.query.planner.Planner.plan` words it.
        """
        declared: Dict[bool, Query] = {}
        for _, q in batch:
            if not isinstance(q, Query) or type(q) is Query:
                raise QueryError(
                    f"not a query object: {q!r} (use the typed query "
                    f"classes from repro.query)"
                )
            if q.weighted is not None:
                declared.setdefault(bool(q.weighted), q)
        if len(declared) > 1:
            raise QueryError(
                "mixed weighted and unweighted queries in one stream: "
                f"{declared[True]!r} vs {declared[False]!r}"
            )

    # ------------------------------------------------------------------
    # batch facades (compatibility spellings of algebra query kinds)
    # ------------------------------------------------------------------
    def preserver_violations(self, preserver_edges: Iterable[Any],
                             sources: Iterable[int],
                             scenarios: Iterable[Iterable[Any]],
                             targets: Optional[Iterable[int]] = None, *,
                             tenant: Optional[str] = None) -> Any:
        """Definition-4 preserver check as a
        :class:`~repro.query.queries.PreserverQuery` stream (one query
        per scenario), sharded like any other gather — scenarios land
        on workers by fault key, so the stream scales with the fleet
        instead of pinning one worker (the pre-PR-9 ``JobRequest``
        side channel).  Same output shape and order as
        :meth:`Session.preserver_violations`.
        """
        edges = tuple(tuple(e) for e in preserver_edges)
        srcs = tuple(sources)
        tgts = None if targets is None else tuple(targets)
        answers = self.answer(
            [PreserverQuery(edges=edges, sources=srcs,
                            faults=tuple(tuple(e) for e in sc),
                            targets=tgts)
             for sc in scenarios],
            tenant=tenant,
        )
        return [v for a in answers for v in a.value]

    def midpoint_scan(self, scheme: Any, s: int, t: int,
                      faults: Iterable[Any],
                      subset: Iterable[Any] = (), *,
                      tenant: Optional[str] = None) -> Any:
        """Midpoint restoration scan as a
        :class:`~repro.query.queries.MidpointQuery` (see
        :meth:`Session.midpoint_scan`)."""
        answer = self.answer(
            [MidpointQuery(s, t, faults=tuple(tuple(e) for e in faults),
                           subset=tuple(tuple(e) for e in subset))],
            scheme, tenant=tenant,
        )
        return answer[0].value

    # ------------------------------------------------------------------
    # merged reports
    # ------------------------------------------------------------------
    def worker_reports(self) -> Dict[str, ReportReply]:
        """Fresh per-worker report replies (capacity, per-tenant
        :class:`CacheInfo` and :class:`SessionStats`)."""
        with self._gather_lock:
            return self.registry.reports()

    def cache_info(self) -> CacheInfo:
        """All workers' engine counters, folded with
        :meth:`CacheInfo.merge` — plus the serial-fallback sessions'
        counters when the fleet has degraded."""
        infos: List[CacheInfo] = []
        for report in self.worker_reports().values():
            infos.extend(info for _, info in report.cache_infos)
        infos.extend(
            s.cache_info() for s in self._fallback_sessions()
        )
        return CacheInfo.merge(infos)

    @property
    def stats(self) -> SessionStats:
        """All workers' session stats, folded with
        :meth:`SessionStats.merge`; ``by_worker`` shows the shard
        balance (including ``"serial"`` when the fleet has degraded)."""
        stats: List[SessionStats] = []
        for report in self.worker_reports().values():
            stats.extend(st for _, st in report.stats)
        stats.extend(s.stats for s in self._fallback_sessions())
        return SessionStats.merge(stats)

    def capacities(self) -> Dict[str, WorkerCapacity]:
        """Per-worker capacity views, refreshed from live reports."""
        self.worker_reports()
        return self.registry.capacities()

    def _fallback_sessions(self) -> List[Any]:
        serial = self.registry._serial_sessions
        return list(serial.values()) if serial else []

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def gathers(self) -> int:
        """Fleet-level gather count (each spans all its shards)."""
        return self._gathers

    def close(self) -> None:
        """Shut the workers down (idempotent)."""
        with self._async_lock:
            executor, self._async_executor = self._async_executor, None
        if executor is not None:
            executor.shutdown(wait=True)
        self.registry.close()

    def __enter__(self) -> "FleetSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _tenant(self, tenant: Optional[str]) -> str:
        if tenant is None:
            if len(self._graphs) == 1:
                return next(iter(self._graphs))
            raise FleetError(
                f"fleet hosts {len(self._graphs)} tenants "
                f"({sorted(self._graphs)}); pass tenant=..."
            )
        if tenant not in self._graphs:
            raise FleetError(
                f"unknown tenant {tenant!r}; fleet hosts "
                f"{sorted(self._graphs)}"
            )
        return tenant

    def __repr__(self) -> str:
        return (
            f"FleetSession(tenants={list(self._graphs)}, "
            f"workers={len(self.registry.workers)}, "
            f"gathers={self._gathers}, pending={len(self._pending)})"
        )
