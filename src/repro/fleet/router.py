"""Shard a query stream across fleet workers, cache-affinely.

Routing decides how much of the engine's wave sharing survives
sharding, so the policies are built around the planner's grouping
key:

* ``"faults"`` — shard by a stable hash of each query's canonical
  fault set.  Every query of one scenario lands on one worker, so the
  planner's per-group wave sharing (one wave serves many targets, one
  vector answers connectivity for free) is preserved *and* repeated
  scenarios always rendezvous with their cached vectors — the
  affinity that makes the fleet's aggregate LRU behave like one big
  cache instead of ``N`` small ones.
* ``"source"`` — shard by contiguous source range.  For vector-heavy
  streams (many sources under few fault sets) fault-hashing would
  idle most of the fleet; per-source waves are independent work, so
  splitting the source range splits the work evenly at no sharing
  cost.
* ``"auto"`` — pick per batch: ``"source"`` when the batch has fewer
  distinct fault sets than there are eligible workers and every query
  carries a source, else ``"faults"``.

Hashing is :func:`zlib.crc32` over the canonical fault tuple's
``repr`` — stable across processes and interpreter runs (unlike
``hash()``, which is salted for strings), so a scenario routes to the
same worker in every session of every run.
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, List, Sequence, Tuple

from repro.exceptions import FleetError
from repro.query.queries import Query

__all__ = ["Router", "fault_hash"]

_POLICIES = ("auto", "faults", "source")


def fault_hash(fault_key: Tuple[Any, ...]) -> int:
    """A process-stable hash of a canonical fault tuple."""
    return zlib.crc32(repr(fault_key).encode("utf-8"))


class Router:
    """Assign each query of a batch to one of the eligible workers.

    The router is pure parent-side policy: it never talks to a
    worker, it only maps ``(query, eligible workers)`` to a worker
    name.  Capacity enters through the ``eligible`` list — the
    registry hands over only workers with room, so routing around
    full workers falls out of the same modulus.
    """

    def __init__(self, policy: str = "auto", *,
                 n: int = 0) -> None:
        if policy not in _POLICIES:
            raise FleetError(
                f"unknown routing policy {policy!r}; "
                f"pick one of {_POLICIES}"
            )
        self.policy = policy
        #: Vertex count of the routed graph — the denominator of the
        #: ``"source"`` range partition.
        self.n = n

    def resolve(self, queries: Sequence[Query],
                eligible: Sequence[str]) -> str:
        """The concrete policy used for this batch."""
        if self.policy != "auto":
            return self.policy
        sourced = [getattr(q, "source", None) for q in queries]
        if any(s is None for s in sourced) or not queries:
            return "faults"
        distinct_faults = len({q.fault_key for q in queries})
        if distinct_faults < len(eligible) and self.n > 0:
            return "source"
        return "faults"

    def shard(self, queries: Sequence[Query],
              eligible: Sequence[str]) -> Dict[str, List[int]]:
        """Partition ``queries`` (by index) over ``eligible`` workers.

        Returns only non-empty shards, keyed by worker name, each a
        list of indices into ``queries`` in original order — the
        caller reassembles answers into submission order from these
        indices.
        """
        if not eligible:
            raise FleetError("cannot shard over zero eligible workers")
        policy = self.resolve(queries, eligible)
        width = len(eligible)
        shards: Dict[str, List[int]] = {}
        for index, query in enumerate(queries):
            source = getattr(query, "source", None)
            if policy == "source" and source is not None and self.n > 0:
                slot = min(width - 1, source * width // self.n)
            else:
                slot = fault_hash(query.fault_key) % width
            shards.setdefault(eligible[slot], []).append(index)
        return shards
