"""Worker lifecycle and capacity accounting for the engine fleet.

The :class:`WorkerRegistry` owns a set of persistent worker processes
(:mod:`repro.fleet.worker`) and is the only module that touches
:mod:`multiprocessing` directly.  It does three jobs:

* **lifecycle** — lazy start, health probes, orderly shutdown, and
  respawn of workers that die mid-request;
* **capacity accounting** — each worker's self-reported LRU footprint
  plus the parent-side in-flight book, combined under an over-commit
  ratio into a :class:`WorkerCapacity` the router can filter on (the
  pod idiom: advertised capacity may exceed physical capacity by a
  configured factor, because tenants rarely peak together);
* **degradation** — when a respawned worker fails again (or a request
  cannot cross the pickle seam at all), the shard is served by an
  in-process serial fallback running the *same*
  :func:`~repro.fleet.worker.serve_request` dispatch, so callers see
  identical answers, just slower.  Degradation is counted
  (:attr:`WorkerRegistry.respawns`,
  :attr:`WorkerRegistry.serial_fallbacks`) and warned about, never
  raised — mirroring the serial-fallback contract of
  :meth:`~repro.scenarios.engine.ScenarioEngine.run`.
"""

from __future__ import annotations

import multiprocessing
import pickle
import warnings
from dataclasses import dataclass
from multiprocessing.connection import Connection
from multiprocessing.process import BaseProcess
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro import obs as _obs
from repro.exceptions import FleetError
from repro.fleet.protocol import (
    CapacityReport,
    InitRequest,
    PingRequest,
    PongReply,
    ReadyReply,
    Reply,
    ReportReply,
    ReportRequest,
    Request,
    ShutdownRequest,
    TenantSpec,
    raise_reply,
    request_weight,
)
from repro.fleet.worker import build_sessions, serve_request, worker_main
from repro.query.session import Session

__all__ = ["WorkerCapacity", "WorkerRegistry"]

#: Exceptions that mean "this message cannot cross the pickle seam" —
#: respawning will not help, the shard goes straight to the serial
#: fallback.
_PICKLE_ERRORS = (pickle.PicklingError, TypeError, AttributeError)

#: Exceptions that mean "the channel to this worker is gone" — the
#: worker is respawned and the request retried once.
_CHANNEL_ERRORS = (EOFError, BrokenPipeError, ConnectionError, OSError)


@dataclass(frozen=True)
class WorkerCapacity:
    """One worker's room, as the router sees it.

    ``total_bytes`` / ``used_bytes`` / ``wave_bytes`` come from the
    worker's last :class:`~repro.fleet.protocol.CapacityReport`;
    ``in_flight`` is the parent-side book of dispatched-but-uncollected
    work.  ``over_commit`` scales the advertised total: with 1.5, a
    worker whose caches could grow to 1 MiB advertises 1.5 MiB, the
    bet being that co-located tenants do not peak together.  A worker
    that has never reported (``total_bytes == 0``) is treated as
    having room — a fresh worker's caches are empty by construction.
    """

    worker: str
    total_bytes: int
    used_bytes: int
    wave_bytes: int
    in_flight: int
    over_commit: float

    @property
    def committed_bytes(self) -> int:
        """The advertised ceiling: ``total_bytes * over_commit``."""
        return int(self.total_bytes * self.over_commit)

    @property
    def booked_bytes(self) -> int:
        """Reported usage plus the booked cost of in-flight work."""
        return self.used_bytes + self.in_flight * self.wave_bytes

    @property
    def available_bytes(self) -> int:
        return max(0, self.committed_bytes - self.booked_bytes)

    @property
    def has_room(self) -> bool:
        return self.total_bytes == 0 or self.available_bytes > 0


class _WorkerHandle:
    """Parent-side state for one worker process (internal)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.process: Optional[BaseProcess] = None
        self.conn: Optional[Connection] = None
        self.in_flight = 0
        self.report: Optional[CapacityReport] = None

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


class WorkerRegistry:
    """Owns the fleet's worker processes and their capacity book.

    Parameters
    ----------
    tenants:
        The :class:`~repro.fleet.protocol.TenantSpec` set every worker
        hosts.  Every worker hosts *all* tenants (full replication):
        routing then only has to pick a worker, never match tenant to
        worker, and any worker can absorb any shard when a peer dies.
    workers:
        Fleet size (>= 1).  Worker names are ``"w0" .. "w{N-1}"``.
    over_commit:
        Capacity over-commit ratio (see :class:`WorkerCapacity`).
    start_method:
        ``multiprocessing`` start method (``None`` = platform
        default).  ``"spawn"`` exercises the full pickle seam; the
        protocol is spawn-safe by contract either way.
    """

    def __init__(self, tenants: Sequence[TenantSpec], *,
                 workers: int = 2, over_commit: float = 1.0,
                 start_method: Optional[str] = None) -> None:
        if workers < 1:
            raise FleetError(f"a fleet needs at least one worker, "
                             f"got workers={workers}")
        if not tenants:
            raise FleetError("a fleet needs at least one tenant")
        names = [spec.name for spec in tenants]
        if len(set(names)) != len(names):
            raise FleetError(f"duplicate tenant names: {sorted(names)}")
        if over_commit <= 0:
            raise FleetError(f"over_commit must be positive, "
                             f"got {over_commit}")
        self.tenants: Tuple[TenantSpec, ...] = tuple(tenants)
        self.over_commit = over_commit
        self._ctx = multiprocessing.get_context(start_method)
        self._handles: Dict[str, _WorkerHandle] = {
            f"w{i}": _WorkerHandle(f"w{i}") for i in range(workers)
        }
        self._serial_sessions: Optional[Dict[str, Session]] = None
        self._started = False
        self._closed = False
        self.respawns = 0
        self.serial_fallbacks = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def workers(self) -> Tuple[str, ...]:
        """Worker names, in routing order."""
        return tuple(self._handles)

    @property
    def started(self) -> bool:
        return self._started

    def start(self) -> None:
        """Start (once) every worker and wait for their ready replies.

        Init messages go out to all workers before any reply is
        awaited, so graph construction and warm-start traversals run
        in the workers concurrently.
        """
        if self._started:
            return
        if self._closed:
            raise FleetError("registry is closed")
        init = InitRequest(tenants=self.tenants)
        for handle in self._handles.values():
            self._launch(handle, init)
        for handle in self._handles.values():
            self._confirm_ready(handle)
        self._started = True

    def _launch(self, handle: _WorkerHandle, init: InitRequest) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=worker_main, args=(handle.name, child_conn),
            name=f"repro-fleet-{handle.name}", daemon=True,
        )
        process.start()
        child_conn.close()
        handle.process = process
        handle.conn = parent_conn
        handle.report = None
        parent_conn.send(init)

    def _confirm_ready(self, handle: _WorkerHandle) -> None:
        assert handle.conn is not None
        try:
            raw = handle.conn.recv()
        except _CHANNEL_ERRORS as exc:
            # A worker that cannot even init is a deployment problem
            # (unimportable __main__ under spawn, unpicklable tenant
            # graph, resource limits) — respawning would loop, so it
            # raises instead of degrading.
            raise FleetError(
                f"worker {handle.name} died during init "
                f"({type(exc).__name__}: {exc}); the fleet cannot "
                f"start in this environment"
            ) from exc
        reply = raise_reply(raw)
        if not isinstance(reply, ReadyReply):
            raise FleetError(
                f"worker {handle.name} answered init with {reply!r}"
            )

    def _respawn(self, handle: _WorkerHandle) -> None:
        """Replace a dead worker's process (warm caches are lost)."""
        self.respawns += 1
        if _obs.ENABLED:
            _obs.inc("repro_fleet_respawns_total", worker=handle.name)
        warnings.warn(
            f"fleet worker {handle.name} died; respawning "
            f"(warm caches lost)",
            RuntimeWarning, stacklevel=4,
        )
        self._reap(handle)
        self._launch(handle, InitRequest(tenants=self.tenants))
        self._confirm_ready(handle)

    def _reap(self, handle: _WorkerHandle) -> None:
        if handle.conn is not None:
            try:
                handle.conn.close()
            except OSError:
                pass
            handle.conn = None
        if handle.process is not None:
            if handle.process.is_alive():
                handle.process.terminate()
            handle.process.join(timeout=5)
            handle.process = None

    def close(self) -> None:
        """Orderly shutdown: ask nicely, then reap."""
        if self._closed:
            return
        self._closed = True
        for handle in self._handles.values():
            if handle.conn is not None and handle.alive:
                try:
                    handle.conn.send(ShutdownRequest())
                    if handle.conn.poll(1.0):
                        handle.conn.recv()
                except (*_CHANNEL_ERRORS, *_PICKLE_ERRORS):
                    pass
        for handle in self._handles.values():
            self._reap(handle)

    def __enter__(self) -> "WorkerRegistry":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:  # interpreter teardown — nothing to do
            pass

    # ------------------------------------------------------------------
    # capacity accounting
    # ------------------------------------------------------------------
    def capacity(self, worker: str) -> WorkerCapacity:
        """The named worker's current capacity view."""
        handle = self._handle(worker)
        report = handle.report
        return WorkerCapacity(
            worker=worker,
            total_bytes=report.total_bytes if report else 0,
            used_bytes=report.used_bytes if report else 0,
            wave_bytes=report.wave_bytes if report else 0,
            in_flight=handle.in_flight,
            over_commit=self.over_commit,
        )

    def capacities(self) -> Dict[str, WorkerCapacity]:
        return {name: self.capacity(name) for name in self._handles}

    def routing_candidates(self) -> List[str]:
        """Workers with room, for the router to shard over.

        When *every* worker is full, all of them are eligible — a
        saturated fleet degrades to even spreading rather than
        refusing work (there is no better worker to route around to).
        """
        eligible = [name for name in self._handles
                    if self.capacity(name).has_room]
        return eligible if eligible else list(self._handles)

    def reports(self) -> Dict[str, ReportReply]:
        """Fresh capacity + cache/stats snapshots from every worker.

        Also folds each report into the registry's capacity book, so
        subsequent :meth:`routing_candidates` calls see it.
        """
        replies = self.dispatch(
            {name: ReportRequest() for name in self._handles}
        )
        reports: Dict[str, ReportReply] = {}
        for name, reply in replies.items():
            checked = raise_reply(reply)
            if not isinstance(checked, ReportReply):
                raise FleetError(
                    f"worker {name} answered report with {checked!r}"
                )
            self._handle(name).report = checked.capacity
            reports[name] = checked
        if _obs.ENABLED:
            for name, capacity in self.capacities().items():
                _obs.set_gauge("repro_fleet_capacity_total_bytes",
                               float(capacity.total_bytes), worker=name)
                _obs.set_gauge("repro_fleet_capacity_used_bytes",
                               float(capacity.booked_bytes), worker=name)
                _obs.set_gauge("repro_fleet_capacity_in_flight",
                               float(capacity.in_flight), worker=name)
        return reports

    def ping(self) -> Dict[str, bool]:
        """Health probe: which workers answer a ping right now."""
        self.start()
        health: Dict[str, bool] = {}
        for name, handle in self._handles.items():
            if handle.conn is None or not handle.alive:
                health[name] = False
                continue
            try:
                handle.conn.send(PingRequest())
                health[name] = (handle.conn.poll(5.0)
                                and isinstance(handle.conn.recv(),
                                               PongReply))
            except (*_CHANNEL_ERRORS, *_PICKLE_ERRORS):
                health[name] = False
        return health

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def dispatch(self, assignments: Mapping[str, Request]
                 ) -> Dict[str, Reply]:
        """Send every assignment, then collect every reply.

        The send-all-then-recv-all shape is the fleet's concurrency:
        all workers crunch their shards simultaneously while the
        parent blocks on the first reply.  A worker that dies (or a
        message that cannot be pickled) is recovered per
        :meth:`_recover` — callers always get one reply per
        assignment, possibly an
        :class:`~repro.fleet.protocol.ErrorReply`.
        """
        self.start()
        in_error: Dict[str, BaseException] = {}
        order: List[Tuple[str, Request]] = []
        for name, request in assignments.items():
            handle = self._handle(name)
            handle.in_flight += request_weight(request)
            order.append((name, request))
            if handle.conn is None:
                in_error[name] = EOFError("worker channel closed")
                continue
            try:
                handle.conn.send(request)
            except (*_CHANNEL_ERRORS, *_PICKLE_ERRORS) as exc:
                in_error[name] = exc
        replies: Dict[str, Reply] = {}
        for name, request in order:
            handle = self._handle(name)
            failure = in_error.get(name)
            reply: Optional[Reply] = None
            if failure is None:
                assert handle.conn is not None
                try:
                    reply = handle.conn.recv()
                except _CHANNEL_ERRORS as exc:
                    failure = exc
            handle.in_flight -= request_weight(request)
            if reply is None:
                assert failure is not None
                reply = self._recover(handle, request, failure)
            replies[name] = reply
        return replies

    def _recover(self, handle: _WorkerHandle, request: Request,
                 failure: BaseException) -> Reply:
        """A request failed in transit: respawn and retry, else serve
        serially in-process.

        Pickle failures skip the respawn (a fresh process cannot make
        an unpicklable message picklable) and go straight to the
        serial fallback.
        """
        if not isinstance(failure, _PICKLE_ERRORS):
            try:
                self._respawn(handle)
                assert handle.conn is not None
                handle.conn.send(request)
                return handle.conn.recv()  # type: ignore[no-any-return]
            except (*_CHANNEL_ERRORS, *_PICKLE_ERRORS):
                pass
        self.serial_fallbacks += 1
        if _obs.ENABLED:
            _obs.inc("repro_fleet_serial_fallbacks_total",
                     worker=handle.name)
        warnings.warn(
            f"fleet worker {handle.name} unrecoverable "
            f"({type(failure).__name__}: {failure}); serving its "
            f"shard with the in-process serial fallback",
            RuntimeWarning, stacklevel=4,
        )
        return serve_request("serial", self._serial(), request)

    def _serial(self) -> Dict[str, Session]:
        """The lazily built in-process fallback sessions."""
        if self._serial_sessions is None:
            self._serial_sessions = build_sessions(self.tenants)
        return self._serial_sessions

    def _handle(self, worker: str) -> _WorkerHandle:
        try:
            return self._handles[worker]
        except KeyError:
            raise FleetError(f"unknown worker {worker!r}; fleet has "
                             f"{sorted(self._handles)}") from None
