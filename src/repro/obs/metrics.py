"""The metrics plane: counters, gauges, fixed-bucket histograms.

One process-wide :class:`MetricsRegistry` (owned by :mod:`repro.obs`)
holds every instrument, keyed by ``(kind, name, labels)``.  Instruments
are get-or-create: the first ``registry.counter("repro_waves_total",
kernel="csr_bfs_distances_many")`` creates it, every later call with
the same name and labels returns the same object, so call sites can
hold a handle across calls or look it up each time — both are cheap.

Design constraints, in the order they shaped the code:

* **Allocation-free observation.**  :meth:`Histogram.observe` is a
  :func:`bisect.bisect_left` into a precomputed bound list plus three
  integer/float updates — no objects are created per observation, so
  the enabled path stays cheap at wave frequency.  Counters and gauges
  are single attribute updates.
* **Fixed buckets.**  Histogram buckets are chosen at creation (the
  first call wins) and never resized; the default ladders cover
  sub-millisecond latencies (``TIME_BUCKETS``) and small-integer sizes
  (``SIZE_BUCKETS``).
* **Snapshot, don't lock.**  Writers update plain attributes under the
  GIL; readers take a point-in-time :meth:`MetricsRegistry.snapshot`
  (a list of plain dicts, JSON-ready).  The only lock guards
  instrument *creation*, which is rare.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SIZE_BUCKETS",
    "TIME_BUCKETS",
]

LabelTuple = Tuple[Tuple[str, str], ...]

#: Latency ladder (seconds): 100 microseconds up to 10 s, roughly
#: 1-2.5-5 per decade — wave and repair kernels land mid-ladder on the
#: reference container.
TIME_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Size ladder (counts): powers of two up to 1024 — batch widths,
#: planner group sizes, coalescer batches.
SIZE_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0,
)


def _label_tuple(labels: Dict[str, Any]) -> LabelTuple:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing tally."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelTuple) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def to_record(self) -> Dict[str, Any]:
        return {"kind": "counter", "name": self.name,
                "labels": dict(self.labels), "value": self.value}


class Gauge:
    """A point-in-time level (capacity, threshold, queue depth)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelTuple) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def to_record(self) -> Dict[str, Any]:
        return {"kind": "gauge", "name": self.name,
                "labels": dict(self.labels), "value": self.value}


class Histogram:
    """Fixed-bucket distribution with an allocation-free ``observe``."""

    __slots__ = ("name", "labels", "bounds", "counts", "sum", "count")

    def __init__(self, name: str, labels: LabelTuple,
                 buckets: Tuple[float, ...]) -> None:
        if not buckets or tuple(sorted(buckets)) != tuple(buckets):
            raise ValueError(
                f"histogram buckets must be sorted and non-empty: "
                f"{buckets!r}")
        self.name = name
        self.labels = labels
        self.bounds = tuple(float(b) for b in buckets)
        # One slot per finite bound plus the +Inf overflow slot.
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        # bisect into the precomputed bounds, then three scalar
        # updates: nothing is allocated per observation.
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def to_record(self) -> Dict[str, Any]:
        return {"kind": "histogram", "name": self.name,
                "labels": dict(self.labels),
                "buckets": list(self.bounds),
                "counts": list(self.counts),
                "sum": self.sum, "count": self.count}


class MetricsRegistry:
    """Process-wide instrument table, keyed ``(kind, name, labels)``."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[Tuple[str, LabelTuple], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelTuple], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelTuple], Histogram] = {}

    # -- get-or-create accessors ------------------------------------
    def counter(self, name: str, **labels: Any) -> Counter:
        key = (name, _label_tuple(labels))
        metric = self._counters.get(key)
        if metric is None:
            with self._lock:
                metric = self._counters.setdefault(
                    key, Counter(name, key[1]))
        return metric

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = (name, _label_tuple(labels))
        metric = self._gauges.get(key)
        if metric is None:
            with self._lock:
                metric = self._gauges.setdefault(key, Gauge(name, key[1]))
        return metric

    def histogram(self, name: str,
                  buckets: Optional[Iterable[float]] = None,
                  **labels: Any) -> Histogram:
        """Get-or-create; ``buckets`` applies only at creation.

        When omitted, names ending in ``_size`` get the power-of-two
        :data:`SIZE_BUCKETS` ladder and everything else the latency
        :data:`TIME_BUCKETS` ladder.
        """
        key = (name, _label_tuple(labels))
        metric = self._histograms.get(key)
        if metric is None:
            if buckets is None:
                chosen = (SIZE_BUCKETS if name.endswith("_size")
                          else TIME_BUCKETS)
            else:
                chosen = tuple(float(b) for b in buckets)
            with self._lock:
                metric = self._histograms.setdefault(
                    key, Histogram(name, key[1], chosen))
        return metric

    # -- read side ---------------------------------------------------
    def snapshot(self) -> List[Dict[str, Any]]:
        """Every instrument as a plain JSON-ready record, sorted."""
        with self._lock:
            metrics: List[Any] = (
                list(self._counters.values())
                + list(self._gauges.values())
                + list(self._histograms.values())
            )
        records = [m.to_record() for m in metrics]
        records.sort(key=lambda r: (str(r["name"]),
                                    sorted(r["labels"].items())))
        return records

    def clear(self) -> None:
        """Drop every instrument (tests and ``obs.reset()``)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def __len__(self) -> int:
        with self._lock:
            return (len(self._counters) + len(self._gauges)
                    + len(self._histograms))
