"""Exporters: Prometheus text format, JSON-lines dumps, a scrape port.

Three ways out of the process, all reading the same snapshots:

* :func:`render_prometheus` — the text exposition format
  (``name{label="v"} value``), counters as ``_total``-as-written,
  histograms as cumulative ``_bucket``/``_sum``/``_count`` series.
* :func:`write_jsonl` — one JSON object per line, metric records
  first, span records after; the artifact the overhead bench and the
  cross-process trace assertions read back.
* :func:`MetricsServer` — a daemon-thread ``http.server`` answering
  every GET with the Prometheus render (the ``repro serve
  --metrics-port`` surface).  Deliberately tiny: no routing, no TLS,
  bind it to loopback or a trusted network only.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import IO, Any, Callable, Dict, Iterable, List

__all__ = ["MetricsServer", "render_prometheus", "write_jsonl"]


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _label_str(labels: Dict[str, str], extra: str = "") -> str:
    parts = [f'{k}="{_escape_label(str(v))}"'
             for k, v in sorted(labels.items())]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def render_prometheus(records: Iterable[Dict[str, Any]]) -> str:
    """Metric records (:meth:`MetricsRegistry.snapshot`) as text format."""
    typed: Dict[str, str] = {}
    lines: List[str] = []
    for record in records:
        name = str(record["name"])
        kind = str(record["kind"])
        labels = dict(record["labels"])
        if typed.get(name) is None:
            typed[name] = kind
            lines.append(f"# TYPE {name} {kind}")
        if kind in ("counter", "gauge"):
            lines.append(f"{name}{_label_str(labels)} "
                         f"{_format_value(record['value'])}")
            continue
        # Histogram: cumulative buckets, then sum and count.
        cumulative = 0
        for bound, count in zip(record["buckets"], record["counts"]):
            cumulative += count
            le = _label_str(labels, f'le="{_format_value(bound)}"')
            lines.append(f"{name}_bucket{le} {cumulative}")
        cumulative += record["counts"][-1]
        le = _label_str(labels, 'le="+Inf"')
        lines.append(f"{name}_bucket{le} {cumulative}")
        lines.append(f"{name}_sum{_label_str(labels)} "
                     f"{_format_value(record['sum'])}")
        lines.append(f"{name}_count{_label_str(labels)} "
                     f"{record['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(stream: IO[str], metrics: Iterable[Dict[str, Any]],
                spans: Iterable[Dict[str, Any]]) -> int:
    """Dump metric then span records, one JSON object per line.

    Returns the number of lines written.  Every record already is a
    plain dict (``kind`` field distinguishes the planes), so readers
    filter with one key instead of a schema.
    """
    written = 0
    for record in metrics:
        stream.write(json.dumps(record, sort_keys=True) + "\n")
        written += 1
    for record in spans:
        stream.write(json.dumps(record, sort_keys=True) + "\n")
        written += 1
    return written


class MetricsServer:
    """A daemon-thread scrape endpoint serving the Prometheus render.

    ``render`` is called per GET, so scrapes always see live values.
    ``port=0`` binds an ephemeral port; read it back from
    :attr:`port`.  Use as a context manager or call :meth:`close`.
    """

    def __init__(self, render: Callable[[], str],
                 host: str = "127.0.0.1", port: int = 0) -> None:
        outer = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                body = outer._render().encode("utf-8")
                self.send_response(200)
                self.send_header("Content-Type",
                                 "text/plain; version=0.0.4")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, format: str, *args: Any) -> None:
                pass  # scrapes are not access-log events

        self._render = render
        self._server = ThreadingHTTPServer((host, port), Handler)
        self.host = self._server.server_address[0]
        self.port = int(self._server.server_address[1])
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-obs-metrics", daemon=True)
        self._thread.start()

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5)

    def __enter__(self) -> "MetricsServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
