"""Unified observability: metrics, tracing, export — off by default.

One plane under the whole stack (kernel dispatch → engine → planner →
fleet → service): instrumented seams record counters, gauges and
fixed-bucket histograms into one process-wide
:class:`~repro.obs.metrics.MetricsRegistry`, and wrap the operations a
query flows through in parent-linked :class:`~repro.obs.trace.Span`
records that cross process boundaries via
:class:`~repro.obs.trace.TraceContext` (an optional field on the fleet
pickle protocol, a ``"trace"`` slot in service frames).

**The overhead contract.**  Observability is *disabled by default* and
the disabled path at every seam is::

    if _obs.ENABLED:
        ...record...

— one module-attribute load and one branch, no object creation, so the
hot loops the PR 1–5 speedups live in stay hot
(``benchmarks/bench_obs.py`` holds the ≤ 1% disabled / ≤ 5% enabled
guard).  Instrumentation lives at the *wave seams* (one call per
batched wave, per repair, per flush), never inside the ``csr_*``
kernel inner loops — reprolint rule OB401 enforces that mechanically.

Usage::

    from repro import obs

    obs.enable()
    ... run workload ...
    print(obs.render_prometheus())       # scrape text
    obs.write_jsonl(open("run.jsonl", "w"))  # spans + metrics dump

Everything here is stdlib-only and import-light: this package sits at
the *bottom* of the layer DAG (rank 1, beside ``exceptions``) so every
other layer may instrument through it at module level.
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager
from typing import (IO, Any, Deque, Dict, Iterable, Iterator, List,
                    Optional)

from repro.obs import export as _export
from repro.obs.metrics import (Counter, Gauge, Histogram,
                               MetricsRegistry, SIZE_BUCKETS,
                               TIME_BUCKETS)
from repro.obs.trace import (Span, TraceContext, current_context,
                             new_id, reset_current, set_current)

__all__ = [
    "Counter", "ENABLED", "Gauge", "Histogram", "MetricsRegistry",
    "MetricsServer", "SIZE_BUCKETS", "Span", "TIME_BUCKETS",
    "TraceContext", "activate", "current_context", "disable",
    "emit_span", "enable", "enabled", "inc", "ingest", "metrics",
    "observe", "registry", "render_prometheus", "reset", "set_gauge",
    "snapshot", "span", "span_records", "start_span", "take_spans",
    "write_jsonl",
]

#: The global switch.  Instrumented seams read this as a module
#: attribute (``if _obs.ENABLED:``) so flipping it takes effect
#: process-wide immediately; they must NOT ``from repro.obs import
#: ENABLED`` (that would freeze the value at import time).
ENABLED: bool = False

#: Finished spans, newest last, bounded so an always-on process cannot
#: grow without bound (drain with :func:`take_spans`).
_SPAN_LIMIT = 16384

_registry = MetricsRegistry()
_spans: Deque[Dict[str, Any]] = deque(maxlen=_SPAN_LIMIT)

MetricsServer = _export.MetricsServer


# ---------------------------------------------------------------------------
# the switch
# ---------------------------------------------------------------------------
def enable() -> None:
    """Turn recording on, process-wide.  Idempotent."""
    global ENABLED
    ENABLED = True


def disable() -> None:
    """Turn recording off (already-recorded data stays).  Idempotent."""
    global ENABLED
    ENABLED = False


def enabled() -> bool:
    return ENABLED


def reset() -> None:
    """Disable and drop all recorded metrics and spans (tests)."""
    disable()
    _registry.clear()
    _spans.clear()


def registry() -> MetricsRegistry:
    """The process-wide instrument table."""
    return _registry


def metrics() -> MetricsRegistry:
    """Alias of :func:`registry` (reads better at some call sites)."""
    return _registry


# ---------------------------------------------------------------------------
# metric helpers — callers guard with ``if _obs.ENABLED:``; these
# re-check so an unguarded call while disabled is a cheap no-op, not
# a recording.
# ---------------------------------------------------------------------------
def inc(name: str, amount: float = 1.0, **labels: Any) -> None:
    """Bump a counter."""
    if ENABLED:
        _registry.counter(name, **labels).inc(amount)


def set_gauge(name: str, value: float, **labels: Any) -> None:
    """Set a gauge level."""
    if ENABLED:
        _registry.gauge(name, **labels).set(value)


def observe(name: str, value: float, **labels: Any) -> None:
    """Record one histogram observation (bucket ladder chosen by name;
    see :meth:`MetricsRegistry.histogram`)."""
    if ENABLED:
        _registry.histogram(name, **labels).observe(value)


# ---------------------------------------------------------------------------
# span helpers
# ---------------------------------------------------------------------------
def start_span(name: str, parent: Optional[TraceContext] = None,
               **attrs: Any) -> Span:
    """Begin a span (parent defaults to the current context).

    The caller must finish it with :func:`finish_span` (or use the
    :func:`span` context manager, which also makes it current).
    """
    if parent is None:
        parent = current_context()
    return Span(name, parent=parent, attrs=attrs)


def finish_span(span_obj: Span) -> None:
    """End a span now and record it (once)."""
    if span_obj._ended:
        return
    span_obj._ended = True
    _spans.append(span_obj.to_record(time.time()))


def emit_span(name: str, seconds: float,
              parent: Optional[TraceContext] = None,
              **attrs: Any) -> None:
    """Record a completed span of the given duration, ending now.

    The one-call form for seams that already timed themselves (the
    engine's wave/repair sites): no context manager, no currency
    change, just a parent-linked record.
    """
    if not ENABLED:
        return
    span_obj = start_span(name, parent=parent, **attrs)
    span_obj.start = time.time() - seconds
    span_obj._ended = True
    _spans.append(span_obj.to_record(time.time()))


@contextmanager
def span(name: str, parent: Optional[TraceContext] = None,
         **attrs: Any) -> Iterator[Optional[Span]]:
    """A span over a block, installed as the current context.

    Yields ``None`` (and records nothing) while disabled, so callers
    may use it unguarded outside hot seams.
    """
    if not ENABLED:
        yield None
        return
    span_obj = start_span(name, parent=parent, **attrs)
    token = set_current(span_obj.context())
    try:
        yield span_obj
    finally:
        reset_current(token)
        finish_span(span_obj)


@contextmanager
def activate(ctx: Optional[TraceContext]) -> Iterator[None]:
    """Make a carried context current for a block (process-boundary
    re-entry: a worker serving a traced request, a server handling a
    traced frame)."""
    token = set_current(ctx)
    try:
        yield
    finally:
        reset_current(token)


# ---------------------------------------------------------------------------
# the read side
# ---------------------------------------------------------------------------
def span_records() -> List[Dict[str, Any]]:
    """Finished spans recorded so far (oldest first), without draining."""
    return list(_spans)


def take_spans() -> List[Dict[str, Any]]:
    """Drain and return the finished-span buffer."""
    out = list(_spans)
    _spans.clear()
    return out


def ingest(records: Iterable[Dict[str, Any]]) -> int:
    """Adopt span records produced elsewhere (a fleet worker's reply,
    a service peer's stats payload) into this process's buffer."""
    count = 0
    for record in records:
        if isinstance(record, dict):
            _spans.append(record)
            count += 1
    return count


def snapshot() -> List[Dict[str, Any]]:
    """Every metric as a plain JSON-ready record."""
    return _registry.snapshot()


def render_prometheus() -> str:
    """The registry in Prometheus text exposition format."""
    return _export.render_prometheus(_registry.snapshot())


def write_jsonl(stream: IO[str]) -> int:
    """Dump metrics then spans as JSON-lines; returns lines written."""
    return _export.write_jsonl(stream, _registry.snapshot(),
                               span_records())
