"""The tracing plane: spans, parent/child links, portable contexts.

A :class:`Span` is one timed operation; finished spans are recorded
into a bounded process-wide buffer (owned by :mod:`repro.obs`) as
plain dicts, so they pickle across the fleet's worker pipes and JSON
across the service's frames without custom reducers.

A :class:`TraceContext` is the portable half of a span — ``(trace_id,
span_id)`` — small enough to ride as an optional field on
``fleet.protocol.ExecuteRequest`` and as a ``"trace"`` slot in the
service's JSON control dicts.  The *current* context lives in a
:mod:`contextvars` variable, so it propagates naturally through the
service's asyncio tasks and the session's executor threads; process
boundaries re-activate it explicitly from the carried context.
"""

from __future__ import annotations

import os
import random
import time
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

__all__ = ["Span", "TraceContext", "current_context", "new_id",
           "reset_current", "set_current"]

# Ids only need to be unique, not unpredictable: one urandom syscall
# seeds a PRNG at import so per-span id generation stays nanoseconds
# (two ids per root span lands inside the enabled-overhead budget).
# CPython's getrandbits is GIL-atomic, so cross-thread use is safe.
_ids = random.Random(os.urandom(16))

if hasattr(os, "register_at_fork"):  # fork-started fleet workers must
    # not replay the parent's id stream — reseed each child.
    os.register_at_fork(
        after_in_child=lambda: _ids.seed(os.urandom(16)))


def new_id() -> str:
    """A fresh 64-bit hex id (trace or span)."""
    return f"{_ids.getrandbits(64):016x}"


@dataclass(frozen=True)
class TraceContext:
    """The portable link to a live span: ``(trace_id, span_id)``.

    Frozen, picklable, and JSON-able via :meth:`to_dict` /
    :meth:`from_dict` — the shape that crosses fleet pipes and
    service frames.
    """

    trace_id: str
    span_id: str

    def to_dict(self) -> Dict[str, str]:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_dict(cls, data: Any) -> Optional["TraceContext"]:
        """Rebuild from a wire dict; ``None`` on anything malformed.

        Lenient by design: a peer speaking a newer obs dialect must
        degrade to "untraced", never to a protocol error.
        """
        if isinstance(data, TraceContext):
            return data
        if not isinstance(data, Mapping):
            return None
        trace_id = data.get("trace_id")
        span_id = data.get("span_id")
        if isinstance(trace_id, str) and isinstance(span_id, str):
            return cls(trace_id=trace_id, span_id=span_id)
        return None


_CURRENT: ContextVar[Optional[TraceContext]] = ContextVar(
    "repro_obs_context", default=None)


def current_context() -> Optional[TraceContext]:
    """The context spans created *now* would be parented to."""
    return _CURRENT.get()


def set_current(ctx: Optional[TraceContext]) -> Any:
    """Install ``ctx`` as current; returns the reset token."""
    return _CURRENT.set(ctx)


def reset_current(token: Any) -> None:
    """Undo a :func:`set_current` (tokens restore in reverse order)."""
    _CURRENT.reset(token)


class Span:
    """One timed operation with a parent link and flat attributes."""

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "start",
                 "attrs", "_ended")

    def __init__(self, name: str,
                 parent: Optional[TraceContext] = None,
                 attrs: Optional[Dict[str, Any]] = None) -> None:
        self.name = name
        self.trace_id = parent.trace_id if parent else new_id()
        self.span_id = new_id()
        self.parent_id = parent.span_id if parent else None
        self.start = time.time()
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self._ended = False

    def context(self) -> TraceContext:
        """The portable handle children (local or remote) parent to."""
        return TraceContext(trace_id=self.trace_id, span_id=self.span_id)

    def to_record(self, end: float) -> Dict[str, Any]:
        return {
            "kind": "span",
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": end,
            "attrs": dict(self.attrs),
        }
