"""Minimal packaging metadata.

The library itself is stdlib-only; ``numpy`` is an *optional*
accelerator enabling the vectorized kernel backend
(:mod:`repro.backends.vectorized`) — install it via the extra::

    pip install -e .[numpy]

Without the extra every kernel is served by the pure-Python
``pyloops`` backend and the dispatch seam falls back cleanly.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.8",
    extras_require={
        "numpy": ["numpy"],
    },
)
