"""BATCH — multi-source kernels + cross-pair grouping vs per-source loops.

Two experiments, one per amortisation axis of the batched layer:

* **many-source** (APSP-style): distance vectors from every vertex of a
  faulted snapshot.  The baseline re-runs the per-source
  ``csr_bfs_distances`` kernel once per source; the batched kernel
  (:func:`repro.spt.batched.csr_bfs_distances_many`) advances all
  sources one level per sweep over the arc array via bit-packed
  frontiers.  Acceptance target: **>= 5x**.
* **pair stream** (replacement-path traffic): ``(s, t, F)`` queries
  where many pairs share each fault set.  The baseline is the engine's
  own per-pair memo path (``pair_replacement_distance`` in a loop, all
  PR-1/PR-2 amortisations active); the batched path
  (:meth:`~repro.scenarios.engine.ScenarioEngine.evaluate_pairs`)
  groups the stream by canonical fault set so each mask setup and each
  traversal wave serves every pair sharing that ``F``, caching the
  per-``(source, F)`` vectors it computes.  Acceptance target:
  **>= 3x**.

Both experiments assert results equal to the reference loops before any
timing is trusted.  The pair stream is built from selected-tree edges,
so every query's fault actually lies on the queried pair's shortest
path — the touch filter cannot shortcut either side, and the measured
gap is traversal batching, not filtering.

Run standalone (CI smoke: ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_batched_sources.py [--quick]

Results are persisted human-readable (``results/batched_sources.txt``),
machine-readable (``results/batched_sources.json``), and aggregated
into the top-level ``BENCH_SUMMARY.json``.
"""

from __future__ import annotations

import argparse
import random
import sys

from repro.analysis.experiments import timed
from repro.graphs import generators
from repro.scenarios import ScenarioEngine
from repro.spt.batched import csr_bfs_distances_many
from repro.spt.bfs import bfs_distances, bfs_tree
from repro.spt.fastpaths import csr_bfs_distances

try:
    from _harness import emit, emit_json
except ImportError:  # running standalone, not under benchmarks/conftest
    import pathlib

    sys.path.insert(0, str(pathlib.Path(__file__).parent))
    from _harness import emit, emit_json


# ----------------------------------------------------------------------
# experiment 1: many sources, one (faulted) snapshot
# ----------------------------------------------------------------------
def per_source_loop(csr, mask, sources):
    """The baseline the batch kernel replaces."""
    return [csr_bfs_distances(csr, mask, s) for s in sources]


def run_many_sources(n: int, seed: int):
    # Average degree 8: the per-source baseline's cost scales with the
    # arc count while the batched wave's bit extraction is fixed per
    # (source, vertex) discovery, so this is the density regime APSP
    # workloads actually run batched kernels in.
    graph = generators.connected_erdos_renyi(n, 8.0 / n, seed=seed)
    csr = graph.csr()
    faults = random.Random(seed + 1).sample(sorted(graph.edges()), 3)
    mask = csr.without(faults)._as_csr()[1]
    sources = list(graph.vertices())

    loop, loop_s = timed(per_source_loop, csr, mask, sources)
    wave, wave_s = timed(csr_bfs_distances_many, csr, mask, sources)
    if wave != loop:
        raise AssertionError("batched kernel diverges from per-source loop")

    speedup = loop_s / wave_s
    rows = [
        {"strategy": "per-source csr_bfs_distances", "n": graph.n,
         "m": graph.m, "sources": len(sources), "seconds": loop_s,
         "speedup": 1.0},
        {"strategy": "csr_bfs_distances_many (bit-packed)", "n": graph.n,
         "m": graph.m, "sources": len(sources), "seconds": wave_s,
         "speedup": speedup},
    ]
    return rows, speedup


# ----------------------------------------------------------------------
# experiment 2: pair stream sharing fault sets across pairs
# ----------------------------------------------------------------------
def build_pair_stream(graph, num_faults: int, num_sources: int,
                      num_targets: int, pairs_per_fault: int, seed: int):
    """``(s, t, (e,))`` queries whose fault provably touches the pair.

    The workload shape of a monitoring deployment: a bounded set of
    monitored sources and targets, and fault scenarios on the *core*
    links — the edges lying on the most monitored shortest paths, found
    by scoring each edge with the exact arithmetic the engine's touch
    filter uses (``d_s(u) + 1 + d_t(v) == d_s(t)``).  Every emitted
    query's fault therefore touches its pair, so neither the per-pair
    baseline nor the batched path can shortcut it: the measured gap is
    traversal sharing, not filtering.
    """
    rng = random.Random(seed)
    vertices = rng.sample(range(graph.n), num_sources + num_targets)
    sources = vertices[:num_sources]
    targets = vertices[num_sources:]
    dist = {v: bfs_distances(graph, v) for v in vertices}

    def touched_pairs(e):
        u, v = e
        out = []
        for s in sources:
            ds_u, ds_v = dist[s][u], dist[s][v]
            for t in targets:
                base = dist[s][t]
                if base < 0:
                    continue
                dt_u, dt_v = dist[t][u], dist[t][v]
                if ((ds_u >= 0 and dt_v >= 0 and ds_u + 1 + dt_v == base)
                        or (ds_v >= 0 and dt_u >= 0
                            and ds_v + 1 + dt_u == base)):
                    out.append((s, t))
        return out

    scored = sorted(
        ((len(touched_pairs(e)), e) for e in sorted(graph.edges())),
        key=lambda item: (-item[0], item[1]),
    )
    stream = []
    for count, e in scored[:num_faults]:
        if count == 0:
            break
        pairs = touched_pairs(e)
        for s, t in rng.sample(pairs, min(pairs_per_fault, len(pairs))):
            stream.append((s, t, (e,)))
    rng.shuffle(stream)  # interleave fault sets like real traffic
    return stream


def per_pair_loop(engine, stream):
    """The baseline: the engine's own per-pair memo path, one query at
    a time (touch filter + memo active, no cross-pair sharing)."""
    return [
        engine.pair_replacement_distance(s, t, f) for s, t, f in stream
    ]


def run_pair_stream(n: int, num_faults: int, num_sources: int,
                    num_targets: int, pairs_per_fault: int, seed: int):
    graph = generators.connected_erdos_renyi(n, 4.0 / n, seed=seed)
    stream = build_pair_stream(graph, num_faults, num_sources,
                               num_targets, pairs_per_fault, seed + 1)

    reference = [
        bfs_distances(graph.without(f), s)[t] for s, t, f in stream
    ]
    # delta=False on BOTH sides: this experiment isolates the
    # cross-pair wave sharing of evaluate_pairs; the PR-5 delta path
    # would patch most single-fault scenarios on either side and
    # measure the repair kernels instead (bench_incremental.py
    # covers those).
    loop_engine = ScenarioEngine(graph, delta=False)
    loop, loop_s = timed(per_pair_loop, loop_engine, stream)

    batch_engine = ScenarioEngine(graph, delta=False)
    batched, batch_s = timed(batch_engine.evaluate_pairs, stream)

    if loop != reference or batched != reference:
        raise AssertionError("pair-stream results diverge from reference")

    speedup = loop_s / batch_s
    rows = [
        {"strategy": "per-pair memo path", "n": graph.n, "m": graph.m,
         "queries": len(stream), "seconds": loop_s, "speedup": 1.0},
        {"strategy": "evaluate_pairs (grouped by F)", "n": graph.n,
         "m": graph.m, "queries": len(stream), "seconds": batch_s,
         "speedup": speedup},
    ]
    return rows, speedup, batch_engine.cache_info()


# ----------------------------------------------------------------------
def run_experiment(quick: bool, seed: int):
    if quick:
        many_rows, many_speedup = run_many_sources(n=150, seed=seed)
        pair_rows, pair_speedup, cache = run_pair_stream(
            n=150, num_faults=10, num_sources=4, num_targets=10,
            pairs_per_fault=10, seed=seed,
        )
    else:
        many_rows, many_speedup = run_many_sources(n=1200, seed=seed)
        pair_rows, pair_speedup, cache = run_pair_stream(
            n=800, num_faults=40, num_sources=24, num_targets=48,
            pairs_per_fault=120, seed=seed,
        )
    rows = many_rows + pair_rows
    payload = {
        "bench": "batched_sources",
        "params": {"quick": quick, "seed": seed},
        "rows": rows,
        "many_source_speedup": many_speedup,
        "pair_stream_speedup": pair_speedup,
        "speedup": many_speedup,
        "cache_info": dict(cache),  # CacheInfo -> plain dict for JSON
    }
    return rows, payload, many_speedup, pair_speedup


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small smoke run (CI): tiny graphs, no "
                             "speedup assertion")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    rows, payload, many_speedup, pair_speedup = run_experiment(
        args.quick, args.seed
    )
    emit(
        "batched_sources", rows,
        "BATCH: multi-source kernels + cross-pair grouping vs "
        "per-source loops",
        notes=(
            f"many-source speedup: {many_speedup:.1f}x (target >= 5x); "
            f"pair-stream speedup: {pair_speedup:.1f}x (target >= 3x); "
            f"identical outputs enforced against the reference loops"
        ),
    )
    emit_json("batched_sources", payload)
    failed = []
    if not args.quick and many_speedup < 5.0:
        failed.append(f"many-source: expected >= 5x, "
                      f"measured {many_speedup:.2f}x")
    if not args.quick and pair_speedup < 3.0:
        failed.append(f"pair-stream: expected >= 3x, "
                      f"measured {pair_speedup:.2f}x")
    for line in failed:
        print(f"FAIL: {line}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
