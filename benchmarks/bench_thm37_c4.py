"""THM37/APPA — impossibility of symmetric + 1-restorable tiebreaking.

Exhaustively enumerates every symmetric tiebreaking scheme on C4 (the
paper's counterexample) and on further even cycles, confirming none is
1-restorable — while the asymmetric restorable scheme of Theorem 2
exists on each.  Benchmarks the exhaustive search itself.
"""

import pytest

from repro.core import properties
from repro.core.scheme import RestorableTiebreaking
from repro.graphs import generators

from _harness import emit


@pytest.fixture(scope="module")
def impossibility_rows():
    rows = []
    for n in (4, 6, 8):
        g = generators.cycle(n)
        schemes = list(properties.enumerate_symmetric_schemes(g))
        restorable = sum(
            1 for s in schemes if properties.is_restorable(s)
        )
        asym = RestorableTiebreaking.build(g, f=1, seed=n)
        rows.append({
            "graph": f"C{n}",
            "symmetric_schemes": len(schemes),
            "restorable_among_them": restorable,
            "asymmetric_restorable_exists": properties.is_restorable(asym),
        })
    return rows


def test_thm37_exhaustive_benchmark(benchmark, impossibility_rows):
    c4 = generators.cycle(4)
    benchmark(properties.theorem37_holds_on, c4)

    emit(
        "thm37_c4", impossibility_rows,
        "THM37: symmetric schemes vs 1-restorability on even cycles",
        notes=(
            "paper: on C4 no symmetric scheme is 1-restorable "
            "(restorable_among_them == 0), while Theorem 2's "
            "asymmetric scheme always is."
        ),
    )
    c4_row = impossibility_rows[0]
    assert c4_row["symmetric_schemes"] == 4
    assert c4_row["restorable_among_them"] == 0
    assert all(r["asymmetric_restorable_exists"]
               for r in impossibility_rows)
