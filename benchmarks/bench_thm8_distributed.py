"""LEM34/THM35/LEM36/THM8 — distributed constructions, measured rounds.

Three tables:

* Lemma 34 — single tie-breaking SPT: rounds vs eccentricity, messages
  per edge (must be O(1)).
* Theorem 35 / Lemma 36 — |S| concurrent SPT instances with random
  delays: makespan vs the O(c + d log n) schedule bound, preserver
  size vs O(|S| n).
* Theorem 8(2) — 2-FT S x S preservers via fault-enumeration waves:
  measured rounds (reported against the substitution note in
  DESIGN.md) and certified correctness.
"""

import pytest

from repro.analysis.bounds import lemma36_round_bound
from repro.core.weights import AntisymmetricWeights
from repro.distributed import (
    distributed_spt,
    distributed_ss_preserver,
    run_concurrent_bfs,
    theorem35_bound,
)
from repro.graphs import generators
from repro.preservers import verify_preserver
from repro.spt.apsp import diameter, eccentricity

from _harness import emit


@pytest.fixture(scope="module")
def lemma34_rows():
    rows = []
    for family, size in (("torus", 5), ("grid", 7), ("er", 60),
                         ("hypercube", 5)):
        g = generators.by_name(family, size, seed=3)
        atw = AntisymmetricWeights.random(g, f=1, seed=3)
        tree, stats = distributed_spt(g, 0, atw.weight, atw.scale)
        rows.append({
            "family": family, "n": g.n, "ecc(s)": eccentricity(g, 0),
            "rounds": stats.rounds,
            "max_msgs_per_edge": stats.max_edge_congestion,
            "messages": stats.messages,
        })
    return rows


@pytest.fixture(scope="module")
def lemma36_rows():
    rows = []
    for sigma in (2, 4, 8):
        g = generators.torus(6, 6)
        atw = AntisymmetricWeights.random(g, f=1, seed=5)
        sources = list(range(0, g.n, g.n // sigma))[:sigma]
        trees, stats = run_concurrent_bfs(
            g, sources, atw.weight, atw.scale, seed=9
        )
        d = diameter(g)
        edges = set()
        for t in trees.values():
            edges |= t.edge_set()
        ok = verify_preserver(
            g, edges, sources,
            fault_sets=generators.fault_sample(g, 10, seed=2, size=1),
        )
        rows.append({
            "S": sigma, "n": g.n, "D": d,
            "makespan_rounds": stats.rounds,
            "sched_bound": round(theorem35_bound(
                stats.max_edge_congestion, d + sigma, g.n
            )),
            "paper_Dlog+Slog": round(lemma36_round_bound(d, sigma, g.n)),
            "preserver_edges": len(edges),
            "edge_bound_Sn": sigma * (g.n - 1),
            "verified": ok,
        })
    return rows


@pytest.fixture(scope="module")
def theorem8_rows():
    rows = []
    for n, ft in ((16, 2), (20, 2), (12, 3)):
        g = generators.connected_erdos_renyi(n, 5.0 / n, seed=n + ft)
        S = [0, n // 2]
        result = distributed_ss_preserver(
            g, S, faults_tolerated=ft, seed=2, max_instances=4000
        )
        sampled = generators.fault_sample(g, 10, seed=4, size=ft)
        ok = verify_preserver(
            g, result.preserver.edges, S, fault_sets=sampled
        )
        rows.append({
            "ft": ft, "n": n, "S": len(S),
            "instances": result.instances,
            "rounds": result.total_rounds,
            "edges": result.preserver.size,
            "verified": ok,
        })
    return rows


def test_lemma34_spt_benchmark(benchmark, lemma34_rows, lemma36_rows,
                               theorem8_rows):
    g = generators.torus(6, 6)
    atw = AntisymmetricWeights.random(g, f=1, seed=5)
    benchmark(distributed_spt, g, 0, atw.weight, atw.scale)

    emit(
        "lem34_distributed_spt", lemma34_rows,
        "LEM34: distributed tie-breaking SPT (rounds ~ ecc, O(1) "
        "msgs/edge)",
        notes="paper: O(D) rounds, O(1) messages per edge.",
    )
    emit(
        "lem36_concurrent", lemma36_rows,
        "THM35+LEM36: concurrent SPTs => 1-FT S x S preserver",
        notes=(
            "paper: O~(D+|S|) rounds and O(|S|n) edges; makespan must "
            "sit below the schedule bound, edges below |S|(n-1)."
        ),
    )
    emit(
        "thm8_multi_fault", theorem8_rows,
        "THM8(2,3): distributed 2/3-FT S x S preservers "
        "(fault-enumeration waves; see DESIGN.md substitution)",
        notes=(
            "rounds are wave-makespans of the substitute construction, "
            "not Parter'20's bounds; correctness is certified."
        ),
    )
    for r in lemma34_rows:
        assert r["max_msgs_per_edge"] <= 1
        assert r["rounds"] <= r["ecc(s)"] + 2
    for r in lemma36_rows:
        assert r["verified"]
        assert r["makespan_rounds"] <= r["sched_bound"]
        assert r["preserver_edges"] <= r["edge_bound_Sn"]
    assert all(r["verified"] for r in theorem8_rows)


def test_lemma36_concurrent_benchmark(benchmark):
    g = generators.torus(5, 5)
    atw = AntisymmetricWeights.random(g, f=1, seed=5)
    sources = [0, 6, 12, 18]
    benchmark(run_concurrent_bfs, g, sources, atw.weight, atw.scale)
