"""THM27/FIG2/FIG3 — the Ω(n^{2-1/2^f} σ^{1/2^f}) lower bound.

Builds the Appendix-B graphs G*_f, replays every labelled fault set
through the adversarial (consistent + stable + symmetric) scheme, and
counts the edges any preserver honouring that scheme is forced to
carry.  The forced count must grow superlinearly with the Ω-bound's
exponent and scale with σ as claimed.
"""

import pytest

from repro.analysis.bounds import fit_exponent
from repro.graphs.lowerbound import (
    build_lower_bound_instance,
    build_multi_source_instance,
    forced_preserver_edges,
    theoretical_lower_bound,
)

from _harness import emit

SIZES = (100, 200, 400)


@pytest.fixture(scope="module")
def single_source_rows():
    rows = []
    for n in SIZES:
        inst = build_lower_bound_instance(n, 1)
        forced = forced_preserver_edges(inst)
        bound = theoretical_lower_bound(inst.n, 1)
        rows.append({
            "f": 1, "sigma": 1, "n": inst.n, "m": inst.graph.m,
            "forced_edges": len(forced),
            "omega_bound": round(bound),
            "bipartite_m": len(inst.bipartite_edges),
        })
    return rows


@pytest.fixture(scope="module")
def multi_source_rows():
    rows = []
    for sigma in (1, 2, 4):
        inst = build_multi_source_instance(240, 1, sigma=sigma)
        forced = forced_preserver_edges(inst)
        rows.append({
            "f": 1, "sigma": sigma, "n": inst.n, "m": inst.graph.m,
            "forced_edges": len(forced),
            "omega_bound": round(theoretical_lower_bound(inst.n, 1, sigma)),
            "bipartite_m": len(inst.bipartite_edges),
        })
    return rows


def test_thm27_replay_benchmark(benchmark, single_source_rows,
                                multi_source_rows):
    inst = build_lower_bound_instance(150, 1)
    benchmark(forced_preserver_edges, inst)

    slope, _ = fit_exponent(
        [r["n"] for r in single_source_rows],
        [r["forced_edges"] for r in single_source_rows],
    )
    emit(
        "thm27_lowerbound_single", single_source_rows,
        "THM27 (single source): forced preserver edges vs Omega-bound",
        notes=(
            f"paper: Omega(n^1.5) for f=1; measured growth exponent "
            f"{slope:.2f} — must be clearly superlinear (> 1.2)."
        ),
    )
    emit(
        "thm27_lowerbound_multi", multi_source_rows,
        "THM27 (multi source): forced edges grow with sigma",
        notes="paper: Omega(sigma^0.5 n^1.5) for f=1.",
    )
    assert slope > 1.2
    forced = [r["forced_edges"] for r in multi_source_rows]
    assert forced[0] < forced[1] < forced[2]


def test_thm27_f2_instance(benchmark):
    """The f = 2 gadget also replays (Figure 3's construction)."""
    inst = build_lower_bound_instance(300, 2)
    forced = benchmark(forced_preserver_edges, inst)
    assert len(forced) > len(inst.x_vertices)
