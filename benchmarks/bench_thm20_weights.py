"""THM20/COR22/THM23 — ATW constructions: validity and bit complexity.

Tabulates bits-per-edge for the three constructions against the claimed
bounds (O(f log n) for the isolation-lemma weights, O(|E|) for the
deterministic ones), certifies the tiebreaking property exactly, and
benchmarks construction time.
"""

import pytest

from repro.analysis.bounds import cor22_bits_per_edge, thm23_bits_per_edge
from repro.core.weights import AntisymmetricWeights
from repro.graphs import generators

from _harness import emit


@pytest.fixture(scope="module")
def bits_rows():
    rows = []
    for n in (32, 64, 128):
        g = generators.connected_erdos_renyi(n, 3.0 / n, seed=n)
        for f in (1, 2):
            atw = AntisymmetricWeights.random(g, f=f, seed=1)
            rows.append({
                "construction": f"random(f={f})",
                "n": n,
                "m": g.m,
                "bits_per_edge": atw.bits_per_edge(),
                "paper_bound_bits": cor22_bits_per_edge(n, f),
            })
        det = AntisymmetricWeights.deterministic(g)
        rows.append({
            "construction": "deterministic",
            "n": n,
            "m": g.m,
            "bits_per_edge": det.bits_per_edge(),
            "paper_bound_bits": thm23_bits_per_edge(g.m),
        })
    return rows


@pytest.fixture(scope="module")
def validity_rows():
    rows = []
    for family, size in (("grid", 5), ("torus", 4), ("er", 30)):
        g = generators.by_name(family, size, seed=2)
        for name, atw in (
            ("random", AntisymmetricWeights.random(g, f=1, seed=4)),
            ("deterministic", AntisymmetricWeights.deterministic(g)),
            ("uniform", AntisymmetricWeights.uniform(g, seed=4)),
        ):
            violations = atw.tiebreaking_violations()
            rows.append({
                "family": family,
                "construction": name,
                "n": g.n,
                "m": g.m,
                "violations": len(violations),
            })
    return rows


def test_cor22_random_weights_benchmark(benchmark, bits_rows, validity_rows):
    g = generators.connected_erdos_renyi(200, 0.03, seed=9)
    benchmark(AntisymmetricWeights.random, g, 1, 7)

    emit(
        "thm20_weights_bits", bits_rows,
        "COR22/THM23: perturbation bit complexity per edge",
        notes=(
            "paper: random needs O(f log n) bits, deterministic O(|E|); "
            "measured values must sit at or below the bound columns."
        ),
    )
    emit(
        "thm20_weights_validity", validity_rows,
        "DEF18: exact certification of the tiebreaking property "
        "(all single-fault sets, all sources)",
        notes="paper: 0 violations (w.h.p. for random; always for det).",
    )
    for r in bits_rows:
        assert r["bits_per_edge"] <= r["paper_bound_bits"] + 2
    assert all(r["violations"] == 0 for r in validity_rows)


def test_thm23_deterministic_weights_benchmark(benchmark):
    g = generators.connected_erdos_renyi(80, 0.05, seed=9)
    benchmark(AntisymmetricWeights.deterministic, g)
