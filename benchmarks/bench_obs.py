"""OBS — the observability plane's overhead contract, measured.

Two experiments, the PR-10 acceptance bar:

* **overhead** — one mixed query stream (the bench_query_planner
  workload shape) answered by identical fresh sessions with the obs
  plane *disabled* and *enabled*.  Answers — values AND provenance —
  are asserted bit-identical before any timing is trusted: recording
  must never steer dispatch, planning, or caching.  The enabled run
  must cost **<= 5%** over disabled.  The disabled path is bounded
  analytically as well as differentially: the per-seam cost is one
  module-attribute load plus one branch (``if _obs.ENABLED:``), so the
  bench micro-times that guard, multiplies by a generous estimate of
  how many times the workload evaluates it (every metric update, every
  span, tripled for the helper-internal re-checks), and requires the
  product to stay **<= 1%** of the disabled runtime.
* **trace** — a traced service run: a client answers fault-set queries
  through ``BackgroundServer`` over a two-worker ``FleetSession``, and
  the resulting span buffer is dumped as JSON-lines
  (``results/obs_trace.jsonl``).  The bench walks the parent links and
  requires **>= 1** complete cross-process chain
  ``client.request -> service.request -> coalescer.wave ->
  fleet.gather -> worker.execute`` — the worker half crossed a real
  process boundary via ``ExecuteReply.spans``.

Run standalone (CI smoke: ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_obs.py [--quick]

``--quick`` shrinks the workload and skips the percentage assertions
(too noisy at smoke scale) but still requires bit-identical answers
and the cross-process chain.
"""

from __future__ import annotations

import argparse
import sys
import timeit

from repro import obs
from repro.analysis.experiments import timed
from repro.graphs import generators
from repro.query import DistanceQuery, Session, VectorQuery

try:
    from _harness import RESULTS_DIR, emit, emit_json
except ImportError:  # running standalone, not under benchmarks/conftest
    import pathlib

    sys.path.insert(0, str(pathlib.Path(__file__).parent))
    from _harness import RESULTS_DIR, emit, emit_json

from bench_query_planner import build_stream


# ----------------------------------------------------------------------
# experiment 1: overhead
# ----------------------------------------------------------------------
def answer_stream(graph, stream):
    """A fresh session per run so caches never carry between configs."""
    session = Session(graph, delta=False)
    return session.answer(stream)


def measure_interleaved(graph, stream, repeats):
    """Paired disabled/enabled runs; overhead = median paired ratio.

    Each iteration times both configs back to back, so thermal and
    frequency drift hit the pair alike and the per-iteration ratio
    isolates the recording cost; the median over iterations shrugs
    off the odd noisy pair that a min-vs-min comparison would let
    pick opposite outliers from.
    """
    ratios = []
    t_off = t_on = float("inf")
    disabled_answers = enabled_answers = None
    for _ in range(repeats):
        obs.disable()
        disabled_answers, off = timed(answer_stream, graph, stream)
        obs.enable()
        enabled_answers, on = timed(answer_stream, graph, stream)
        ratios.append(on / off)
        t_off = min(t_off, off)
        t_on = min(t_on, on)
    obs.disable()
    overhead = sorted(ratios)[len(ratios) // 2] - 1.0
    return disabled_answers, t_off, enabled_answers, t_on, overhead


def guard_cost_seconds() -> float:
    """Median micro-timed cost of one ``if _obs.ENABLED:`` check."""
    number = 200_000
    runs = [timeit.timeit("_obs.ENABLED", globals={"_obs": obs},
                          number=number) / number
            for _ in range(5)]
    return sorted(runs)[len(runs) // 2]


def recorded_events() -> int:
    """How many recording calls the enabled run made, over-counted.

    Counter values over-count increments with ``amount > 1`` and every
    gauge is charged ten updates — deliberately generous, since this
    feeds the *upper bound* on what the disabled path pays in guards.
    """
    events = len(obs.span_records())
    for record in obs.snapshot():
        if record["kind"] == "counter":
            events += int(record["value"])
        elif record["kind"] == "histogram":
            events += int(record["count"])
        else:
            events += 10
    return events


def run_overhead(quick: bool, seed: int):
    if quick:
        n, num_faults, num_sources, num_targets, per_fault, repeats = \
            150, 10, 8, 3, 12, 1
    else:
        n, num_faults, num_sources, num_targets, per_fault, repeats = \
            600, 50, 80, 8, 64, 5
    graph = generators.connected_erdos_renyi(n, 4.0 / n, seed=seed)
    stream = build_stream(graph, num_faults, num_sources, num_targets,
                          per_fault, seed + 1)

    obs.reset()
    answer_stream(graph, stream)  # warm the import/backend state

    disabled_answers, t_off, enabled_answers, t_on, enabled_overhead \
        = measure_interleaved(graph, stream, repeats)
    # the registry accumulated over every enabled repeat; normalise to
    # one run's worth of recording events (rounded up)
    events = -(-recorded_events() // repeats)
    obs.reset()

    # bit-identical: values AND provenance, or nothing else matters
    mismatched = [
        (a.query, a.value, b.value)
        for a, b in zip(disabled_answers, enabled_answers)
        if a.value != b.value or a.provenance != b.provenance
    ]
    if mismatched:
        raise AssertionError(
            f"observability changed {len(mismatched)} answers, "
            f"first: {mismatched[0]!r}")

    guard = guard_cost_seconds()
    # 3x: the seam's own guard plus the helpers' internal re-checks.
    disabled_bound = (guard * events * 3) / t_off
    rows = [
        {"config": "obs disabled (default)", "queries": len(stream),
         "seconds": t_off, "overhead_pct": 100.0 * disabled_bound,
         "bar_pct": 1.0},
        {"config": "obs enabled (metrics + spans)",
         "queries": len(stream), "seconds": t_on,
         "overhead_pct": 100.0 * enabled_overhead, "bar_pct": 5.0},
    ]
    payload = {
        "bench": "obs_overhead",
        "params": {"quick": quick, "seed": seed, "n": graph.n,
                   "queries": len(stream), "repeats": repeats},
        "rows": rows,
        "guard_seconds": guard,
        "recorded_events": events,
        "disabled_bound_pct": 100.0 * disabled_bound,
        "enabled_overhead_pct": 100.0 * enabled_overhead,
    }
    return rows, payload, disabled_bound, enabled_overhead, events


# ----------------------------------------------------------------------
# experiment 2: the cross-process trace chain
# ----------------------------------------------------------------------
CHAIN = ("client.request", "service.request", "coalescer.wave",
         "fleet.gather", "worker.execute")


def chain_of(record, by_id):
    """Span names from this record up its parent links to the root."""
    names = []
    while record is not None:
        names.append(record["name"])
        record = by_id.get(record["parent_id"])
    return tuple(reversed(names))


def run_trace(seed: int):
    from repro.fleet import FleetSession
    from repro.service import BackgroundServer, ServiceClient

    graph = generators.connected_erdos_renyi(80, 0.08, seed=seed)
    edges = sorted(graph.edges())[:4]
    queries = [DistanceQuery(0, graph.n - 1, (e,)) for e in edges]
    queries += [VectorQuery(1, (edges[0],))]

    obs.reset()
    obs.enable()
    with FleetSession(graph, workers=2) as fleet:
        with BackgroundServer(fleet) as server:
            with ServiceClient(*server.address,
                               client="bench-obs") as client:
                answers = client.answer(queries)
    obs.disable()
    if len(answers) != len(queries):
        raise AssertionError("traced run lost answers")

    records = obs.span_records()
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "obs_trace.jsonl"
    with open(path, "w", encoding="utf-8") as stream:
        lines = obs.write_jsonl(stream)

    by_id = {r["span_id"]: r for r in records}
    chains = [chain_of(r, by_id) for r in records
              if r["name"] == "worker.execute"]
    complete = [c for c in chains if c == CHAIN]
    return path, lines, len(records), complete


# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small smoke run (CI): tiny stream, no "
                             "percentage assertions")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    rows, payload, disabled_bound, enabled_overhead, events = \
        run_overhead(args.quick, args.seed)
    trace_path, lines, span_count, complete = run_trace(args.seed)
    payload["trace"] = {
        "jsonl": str(trace_path), "lines": lines,
        "spans": span_count, "complete_chains": len(complete),
        "chain": list(CHAIN),
    }
    emit(
        "obs_overhead", rows,
        "OBS: recording overhead, disabled (guard bound) and enabled "
        "(differential), bit-identical answers required",
        notes=(
            f"disabled bound {100 * disabled_bound:.3f}% of runtime "
            f"({events} recording events, bar 1%); enabled "
            f"{100 * enabled_overhead:+.1f}% (bar 5%); traced service "
            f"run exported {lines} JSON lines with "
            f"{len(complete)} complete cross-process chains "
            f"({' -> '.join(CHAIN)}) to {trace_path.name}"
        ),
    )
    emit_json("obs_overhead", payload)

    failed = []
    if not complete:
        failed.append("no complete cross-process span chain in the "
                      "traced service run")
    if not args.quick and disabled_bound > 0.01:
        failed.append(f"disabled guard bound "
                      f"{100 * disabled_bound:.3f}% > 1%")
    if not args.quick and enabled_overhead > 0.05:
        failed.append(f"enabled overhead "
                      f"{100 * enabled_overhead:.1f}% > 5%")
    for line in failed:
        print(f"FAIL: {line}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
