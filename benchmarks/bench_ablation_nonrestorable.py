"""ABLATION — is restorability load-bearing for subset preservers?

Theorem 31's 1-FT S x S preserver is "just" the union of |S| shortest
path trees — but computed under *restorable* tiebreaking.  This
ablation builds the same union with plain lexicographic-BFS trees:

* on even cycles with adjacent sources the BFS union provably loses
  replacement distances (the two BFS trees collapse onto one spanning
  tree, so one fault disconnects the pair inside the union while G
  stays connected) — the constructive face of Figure 1;
* on generic sparse ER graphs the BFS union often happens to work —
  which is exactly the trap the paper warns about: arbitrary
  tiebreaking fails *sometimes*, so it cannot be certified, while the
  restorable union is correct always (violations == 0 in every row).
"""

import pytest

from repro.core.scheme import BFSTiebreaking, RestorableTiebreaking
from repro.graphs import generators
from repro.preservers import preserver_violations

from _harness import emit


def _tree_union(scheme, sources):
    edges = set()
    for s in sources:
        edges |= scheme.tree(s).edge_set()
    return frozenset(edges)


def _row(tag, g, sources, scheme_name, scheme):
    union = _tree_union(scheme, sources)
    violations = preserver_violations(g, union, sources, f=1)
    return {
        "workload": tag,
        "scheme": scheme_name,
        "n": g.n,
        "union_edges": len(union),
        "violations": len(violations),
    }


@pytest.fixture(scope="module")
def ablation_rows():
    rows = []
    # adversarial workloads: cycles, adjacent sources
    for n in (4, 6, 8):
        g = generators.cycle(n)
        sources = [0, 1]
        rows.append(_row(f"C{n}", g, sources, "bfs-lex",
                         BFSTiebreaking(g)))
        rows.append(_row(
            f"C{n}", g, sources, "restorable",
            RestorableTiebreaking.build(g, f=1, seed=n),
        ))
    # benign workloads: sparse ER, spread sources
    for seed in range(3):
        g = generators.connected_erdos_renyi(20, 0.15, seed=seed + 100)
        sources = [0, 7, 13, 19]
        rows.append(_row(f"er20/{seed}", g, sources, "bfs-lex",
                         BFSTiebreaking(g)))
        rows.append(_row(
            f"er20/{seed}", g, sources, "restorable",
            RestorableTiebreaking.build(g, f=1, seed=seed),
        ))
    return rows


def test_ablation_tree_union_benchmark(benchmark, ablation_rows):
    g = generators.connected_erdos_renyi(20, 0.15, seed=100)
    scheme = RestorableTiebreaking.build(g, f=1, seed=0)
    benchmark(_tree_union, scheme, [0, 7, 13, 19])

    emit(
        "ablation_nonrestorable", ablation_rows,
        "ABLATION: SPT-union preserver with vs without restorability",
        notes=(
            "paper: the union of restorable-weight SPTs IS a 1-FT "
            "S x S preserver (Theorem 31); arbitrary tiebreaking "
            "fails on adversarial workloads (cycles, adjacent "
            "sources) and merely *happens* to work on benign ones."
        ),
    )
    restorable = [r for r in ablation_rows if r["scheme"] == "restorable"]
    cycle_bfs = [r for r in ablation_rows
                 if r["scheme"] == "bfs-lex"
                 and r["workload"].startswith("C")]
    assert all(r["violations"] == 0 for r in restorable)
    assert all(r["violations"] > 0 for r in cycle_bfs)
