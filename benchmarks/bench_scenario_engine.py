"""SCEN — batched fault-scenario engine vs the naive per-FaultView loop.

The paper's workload shape: one base graph, a stream of fault sets F,
a replacement-distance query per scenario.  The naive loop builds a
:class:`~repro.graphs.views.FaultView` and reruns a reference BFS per
scenario; the :class:`~repro.scenarios.engine.ScenarioEngine` amortises
the CSR snapshot, base distance vectors and the shortest-path touch
filter across the stream.  Acceptance target: >= 3x on 1000
single-fault scenarios against a 2000-vertex graph, with bit-identical
results.

Run standalone (CI smoke: ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_scenario_engine.py [--quick]

or under pytest-benchmark like the other benches.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.experiments import timed
from repro.graphs import generators
from repro.scenarios import ScenarioEngine, random_fault_sets
from repro.spt.bfs import bfs_distances
from repro.spt.fastpaths import csr_bfs_distances

try:
    from _harness import emit, emit_json
except ImportError:  # running standalone, not under benchmarks/conftest
    import pathlib

    sys.path.insert(0, str(pathlib.Path(__file__).parent))
    from _harness import emit, emit_json


def naive_scenario_loop(graph, s, t, scenarios):
    """The baseline the engine replaces: fresh FaultView + reference BFS."""
    return [bfs_distances(graph.without(f), s)[t] for f in scenarios]


def csr_scenario_loop(engine, s, t, scenarios):
    """CSR fast path alone: masked array BFS per scenario, no filtering."""
    out = []
    for faults in scenarios:
        mask = engine.view(faults)._as_csr()[1]
        out.append(csr_bfs_distances(engine.csr, mask, s)[t])
    return out


def run_experiment(n: int = 2000, num_scenarios: int = 1000,
                   seed: int = 0):
    """Time the three strategies on one stream; return (rows, speedups)."""
    graph = generators.connected_erdos_renyi(n, 4.0 / n, seed=seed)
    scenarios = random_fault_sets(graph, 1, num_scenarios, seed=seed + 1)
    s = 0
    dist0 = bfs_distances(graph, s)
    t = max(graph.vertices(), key=lambda v: dist0[v])  # farthest target

    naive, naive_s = timed(naive_scenario_loop, graph, s, t, scenarios)

    engine = ScenarioEngine(graph)
    csr_only, csr_s = timed(csr_scenario_loop, engine, s, t, scenarios)

    engine = ScenarioEngine(graph)  # fresh caches: pay base BFS inside
    batched, engine_s = timed(
        engine.replacement_distances, s, t, scenarios
    )

    if batched != naive or csr_only != naive:
        raise AssertionError(
            "scenario engine results diverge from the naive loop"
        )

    rows = [
        {"strategy": "naive FaultView loop", "n": graph.n, "m": graph.m,
         "scenarios": len(scenarios), "seconds": naive_s, "speedup": 1.0},
        {"strategy": "CSR masked BFS", "n": graph.n, "m": graph.m,
         "scenarios": len(scenarios), "seconds": csr_s,
         "speedup": naive_s / csr_s},
        {"strategy": "ScenarioEngine (batched)", "n": graph.n, "m": graph.m,
         "scenarios": len(scenarios), "seconds": engine_s,
         "speedup": naive_s / engine_s},
    ]
    return rows, naive_s / engine_s


def test_scenario_engine_speedup(benchmark):
    """Benchmark one batched query; assert the >= 3x acceptance target."""
    rows, speedup = run_experiment()

    graph = generators.connected_erdos_renyi(400, 0.01, seed=2)
    engine = ScenarioEngine(graph)
    scenarios = random_fault_sets(graph, 1, 100, seed=3)
    benchmark(engine.replacement_distances, 0, graph.n - 1, scenarios)

    emit(
        "scenario_engine", rows,
        "SCEN: batched scenario engine vs naive per-FaultView loop",
        notes=(
            "identical outputs enforced; engine amortises the CSR "
            "snapshot, base BFS vectors and the shortest-path touch "
            "filter across the scenario stream.  Target: >= 3x."
        ),
    )
    assert speedup >= 3.0, f"expected >= 3x, measured {speedup:.2f}x"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small smoke run (CI): 300 vertices, "
                             "100 scenarios, no speedup assertion")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    if args.quick:
        rows, speedup = run_experiment(n=300, num_scenarios=100,
                                       seed=args.seed)
    else:
        rows, speedup = run_experiment(seed=args.seed)
    emit(
        "scenario_engine", rows,
        "SCEN: batched scenario engine vs naive per-FaultView loop",
        notes=f"measured end-to-end speedup: {speedup:.1f}x",
    )
    emit_json("scenario_engine", {
        "bench": "scenario_engine",
        "params": {"quick": args.quick, "seed": args.seed},
        "rows": rows,
        "speedup": speedup,
    })
    if not args.quick and speedup < 3.0:
        print(f"FAIL: expected >= 3x, measured {speedup:.2f}x")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
