"""THM10/THM30 — FT exact distance labels of O(n^{2-1/2^f} log n) bits.

Sweeps n for the (f+1) = 1-fault labeling, measures the max label
bit-length against the theorem's bound, spot-checks query exactness
under sampled faults, and benchmarks label-only queries.
"""

import pytest

from repro.analysis.bounds import fit_exponent, thm30_label_bits_bound
from repro.graphs import generators
from repro.labeling import DistanceLabeling
from repro.spt.bfs import bfs_distances

from _harness import emit

SIZES = (24, 48, 96)


@pytest.fixture(scope="module")
def sweep_rows():
    rows = []
    for n in SIZES:
        g = generators.connected_erdos_renyi(n, 4.0 / n, seed=n)
        lab = DistanceLabeling.build(g, f=0, seed=2)
        # sampled exactness check under single faults
        mismatches = 0
        checks = 0
        for e in generators.fault_sample(g, 6, seed=1, size=1):
            view = g.without(e)
            dist = bfs_distances(view, 0)
            for t in range(1, n, 3):
                checks += 1
                if lab.distance(0, t, e) != dist[t]:
                    mismatches += 1
        bound = thm30_label_bits_bound(n, 0)
        rows.append({
            "n": n, "m": g.m, "max_label_bits": lab.max_label_bits(),
            "paper_bound_bits": round(bound),
            "ratio": lab.max_label_bits() / bound,
            "queries": checks, "mismatches": mismatches,
        })
    return rows


def test_thm30_query_benchmark(benchmark, sweep_rows):
    g = generators.connected_erdos_renyi(48, 4.0 / 48, seed=48)
    lab = DistanceLabeling.build(g, f=0, seed=2)
    a, b = lab.label(0), lab.label(47)
    fault = next(iter(g.edges()))

    benchmark(DistanceLabeling.query, a, b, [fault])

    slope, _ = fit_exponent(
        [r["n"] for r in sweep_rows],
        [r["max_label_bits"] for r in sweep_rows],
    )
    emit(
        "thm30_labels", sweep_rows,
        "THM30: 1-FT exact distance label sizes vs n log n (f=0 overlay)",
        notes=(
            f"paper: O(n log n) bits at f=0 (tree labels); measured "
            f"growth exponent {slope:.2f}.  The ~2.2x ratio is the "
            f"encoding constant (two endpoints per edge + headers), "
            f"inside the O()."
        ),
    )
    assert all(r["mismatches"] == 0 for r in sweep_rows)
    # within a small constant of the bound, and ratio shrinking with n
    assert all(r["ratio"] <= 4.0 for r in sweep_rows)
    ratios = [r["ratio"] for r in sweep_rows]
    assert ratios[-1] <= ratios[0]


def test_thm30_build_benchmark(benchmark):
    g = generators.connected_erdos_renyi(32, 0.12, seed=7)
    benchmark(DistanceLabeling.build, g, 0, 3)
