"""WSCEN — weighted scenario engine vs the naive per-scenario Dijkstra loop.

The weighted analogue of ``bench_scenario_engine``: one base
:class:`~repro.weighted.graph.WeightedGraph`, a stream of fault sets,
a replacement-distance query per scenario.  The naive loop builds a
fresh ``WeightedView`` and reruns the reference dict-and-heap Dijkstra
(one Python ``weight(u, v)`` call per arc) per scenario; the engine
amortises the weight-carrying CSR snapshot, base weighted distance
vectors, the weighted touch filter and the scenario memo across the
stream, and traverses flat arrays when it must traverse at all.

Acceptance target: >= 10x on 1000 single-fault scenarios against an
n >= 500 weighted graph, with bit-identical results (also enforced by
the hypothesis cross-checks in ``tests/test_weighted_fastpaths.py``).

Run standalone (CI smoke: ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_weighted_engine.py [--quick]

Results are persisted both human-readable (``results/weighted_engine.txt``)
and machine-readable (``results/weighted_engine.json``).
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.experiments import timed
from repro.scenarios import ScenarioEngine, random_fault_sets
from repro.spt.bfs import UNREACHABLE
from repro.spt.dijkstra import dijkstra_reference
from repro.spt.fastpaths import csr_weighted_distance
from repro.weighted import WeightedGraph

try:
    from _harness import emit, emit_json
except ImportError:  # running standalone, not under benchmarks/conftest
    import pathlib

    sys.path.insert(0, str(pathlib.Path(__file__).parent))
    from _harness import emit, emit_json


def naive_scenario_loop(wg, s, t, scenarios):
    """The baseline the engine replaces: fresh view + reference Dijkstra."""
    out = []
    for faults in scenarios:
        view = wg.without(faults)
        dist, _ = dijkstra_reference(view, s, view.arc_weight)
        out.append(dist.get(t, UNREACHABLE))
    return out


def flat_scenario_loop(engine, s, t, scenarios):
    """Flat kernel alone: masked array Dijkstra per scenario, no filter."""
    out = []
    for faults in scenarios:
        mask = engine.view(faults)._as_csr()[1]
        out.append(csr_weighted_distance(engine.csr, mask, s, t))
    return out


def run_experiment(n: int = 600, num_scenarios: int = 1000,
                   seed: int = 0):
    """Time the three strategies on one stream; return (rows, speedups)."""
    wg = WeightedGraph.random(n, 4.0 / n, max_weight=20, seed=seed)
    scenarios = random_fault_sets(wg, 1, num_scenarios, seed=seed + 1)
    s = 0
    probe = ScenarioEngine(wg)
    dist0 = probe.base_distances(s)
    t = max(range(wg.n), key=dist0.__getitem__)  # farthest target

    naive, naive_s = timed(naive_scenario_loop, wg, s, t, scenarios)

    engine = ScenarioEngine(wg)
    flat, flat_s = timed(flat_scenario_loop, engine, s, t, scenarios)

    engine = ScenarioEngine(wg)  # fresh caches: pay base Dijkstra inside
    batched, engine_s = timed(
        engine.replacement_distances, s, t, scenarios
    )

    if batched != naive or flat != naive:
        raise AssertionError(
            "weighted scenario engine results diverge from the naive loop"
        )

    rows = [
        {"strategy": "naive WeightedView loop", "n": wg.n, "m": wg.m,
         "scenarios": len(scenarios), "seconds": naive_s, "speedup": 1.0},
        {"strategy": "flat masked Dijkstra", "n": wg.n, "m": wg.m,
         "scenarios": len(scenarios), "seconds": flat_s,
         "speedup": naive_s / flat_s},
        {"strategy": "ScenarioEngine (batched)", "n": wg.n, "m": wg.m,
         "scenarios": len(scenarios), "seconds": engine_s,
         "speedup": naive_s / engine_s},
    ]
    payload = {
        "bench": "weighted_engine",
        "params": {"n": wg.n, "m": wg.m, "scenarios": len(scenarios),
                   "seed": seed},
        "rows": rows,
        "speedup": naive_s / engine_s,
        "cache_info": dict(engine.cache_info()),  # CacheInfo -> JSON
    }
    return rows, payload, naive_s / engine_s


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small smoke run (CI): 150 vertices, "
                             "120 scenarios, no speedup assertion")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    if args.quick:
        rows, payload, speedup = run_experiment(
            n=150, num_scenarios=120, seed=args.seed
        )
    else:
        rows, payload, speedup = run_experiment(seed=args.seed)
    emit(
        "weighted_engine", rows,
        "WSCEN: weighted scenario engine vs naive per-scenario Dijkstra",
        notes=f"measured end-to-end speedup: {speedup:.1f}x "
              f"(target: >= 10x, identical outputs enforced)",
    )
    emit_json("weighted_engine", payload)
    if not args.quick and speedup < 10.0:
        print(f"FAIL: expected >= 10x, measured {speedup:.2f}x")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
