"""ABLATION — Afek et al.'s base sets vs Theorem 2's selected paths.

The paper's "intermediate open question" (Section 1): the pre-2021
workaround for tiebreaking-sensitivity was a base set of up to
``m(n-1)`` paths; Theorem 2 replaces it with just ``n(n-1)`` selected
paths (one per ordered pair).  This ablation measures both objects on
the same graphs — the size gap is the concrete payoff of the paper —
and verifies both methods restore correctly.
"""

import pytest

from repro.analysis.experiments import timed
from repro.graphs import generators
from repro.core.scheme import RestorableTiebreaking
from repro.core.restoration import restore_by_concatenation
from repro.spt.apsp import replacement_distance
from repro.weighted.base_set import BaseSet

from _harness import emit

SIZES = (30, 60, 120)


@pytest.fixture(scope="module")
def comparison_rows():
    rows = []
    for n in SIZES:
        g = generators.connected_erdos_renyi(n, 4.0 / n, seed=n)
        base = BaseSet(g, seed=1)
        rows.append({
            "n": n,
            "m": g.m,
            "base_set_paths": base.count_paths(),
            "base_set_bound": base.theoretical_bound(),
            "thm2_selected_paths": n * (n - 1),
            "reduction_factor": base.count_paths() / (n * (n - 1)),
        })
    return rows


def test_base_set_restore_benchmark(benchmark, comparison_rows):
    g = generators.connected_erdos_renyi(60, 4.0 / 60, seed=60)
    base = BaseSet(g, seed=1)
    path = base.canonical(0, 59)
    fault = next(iter(path.edges()))
    base.restore(0, 59, fault)  # warm the trees

    benchmark(base.restore, 0, 59, fault)

    emit(
        "ablation_base_sets", comparison_rows,
        "ABLATION: base-set size vs Theorem 2's selected-path count",
        notes=(
            "paper: base sets need up to m(n-1)+C(n,2) paths; "
            "restorable tiebreaking needs n(n-1).  reduction_factor "
            "is the open-question gap the paper closes."
        ),
    )
    assert all(r["base_set_paths"] > r["thm2_selected_paths"]
               for r in comparison_rows)
    assert all(r["base_set_paths"] <= r["base_set_bound"]
               for r in comparison_rows)


def test_both_methods_restore_exactly(benchmark):
    """Correctness cross-check + benchmark of Theorem 2 restoration."""
    g = generators.connected_erdos_renyi(60, 4.0 / 60, seed=60)
    base = BaseSet(g, seed=1)
    scheme = RestorableTiebreaking.build(g, f=1, seed=1)
    pairs = [(0, 59), (7, 31)]
    for s, t in pairs:
        path = scheme.path(s, t)
        for e in path.edges():
            truth = replacement_distance(g, s, t, [e])
            if truth == -1:
                continue
            assert restore_by_concatenation(scheme, s, t, [e]).path.hops \
                == truth
            assert base.restore(s, t, e).hops == truth
    path = scheme.path(0, 59)
    fault = next(iter(path.edges()))
    scheme.tree(0)
    scheme.tree(59)
    benchmark(restore_by_concatenation, scheme, 0, 59, [fault])
