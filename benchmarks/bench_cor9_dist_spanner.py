"""COR9 — distributed FT +4 additive spanners.

Runs the full distributed pipeline (clustering round + distributed
C x C preserver) for f = 1 and f = 2, records measured rounds and edge
counts against the corollary's shapes (subquadratic edges, rounds
dominated by the preserver construction), and certifies stretch on
sampled fault sets.
"""

import pytest

from repro.distributed.spanner import distributed_ft_spanner
from repro.graphs import generators
from repro.spanners import verify_spanner

from _harness import emit


@pytest.fixture(scope="module")
def sweep_rows():
    rows = []
    for n, ft in ((24, 1), (36, 1), (48, 1), (20, 2)):
        g = generators.connected_erdos_renyi(n, 0.3, seed=n * 7 + ft)
        result = distributed_ft_spanner(g, faults_tolerated=ft, seed=4)
        sampled = generators.fault_sample(g, 10, seed=1, size=ft)
        ok = verify_spanner(
            g, result.spanner.edges, additive=4, fault_sets=sampled
        )
        rows.append({
            "ft": ft, "n": n, "m": g.m,
            "spanner_edges": result.spanner.size,
            "rounds": result.total_rounds,
            "clustering_rounds": result.clustering_stats.rounds,
            "centers": len(result.spanner.centers),
            "verified": ok,
        })
    return rows


def test_cor9_distributed_spanner_benchmark(benchmark, sweep_rows):
    g = generators.connected_erdos_renyi(24, 0.3, seed=11)
    benchmark(distributed_ft_spanner, g, 1)

    emit(
        "cor9_distributed_spanner", sweep_rows,
        "COR9: distributed FT +4 spanners (rounds and sizes)",
        notes=(
            "paper: 1-FT spanner O~(n^1.5) edges in O~(D+sqrt(n)) "
            "rounds; here rounds come from the substitute preserver "
            "construction (DESIGN.md) and sizes must stay below m."
        ),
    )
    assert all(r["verified"] for r in sweep_rows)
    assert all(r["spanner_edges"] <= r["m"] for r in sweep_rows)
    assert all(r["clustering_rounds"] <= 2 for r in sweep_rows)
