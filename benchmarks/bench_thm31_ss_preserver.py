"""THM5/THM31 — (f+1)-FT S x S preservers of size O(n^{2-1/2^f}|S|^{1/2^f}).

Two sweeps: |S| at fixed n (1-FT preservers must grow ~linearly in |S|
with slope <= n per source), and n at fixed source density for 1-FT and
2-FT.  Correctness is sampled-verified inside the sweep so every
reported size belongs to a *certified* preserver.
"""

import pytest

from repro.analysis.bounds import thm31_ss_preserver_bound
from repro.graphs import generators
from repro.preservers import ft_ss_preserver, verify_preserver

from _harness import emit


@pytest.fixture(scope="module")
def source_sweep_rows():
    n = 120
    g = generators.connected_erdos_renyi(n, 4.0 / n, seed=50)
    rows = []
    for sigma in (2, 4, 8, 16):
        S = list(range(0, n, n // sigma))[:sigma]
        p = ft_ss_preserver(g, S, faults_tolerated=1, seed=6)
        sampled = generators.fault_sample(g, 15, seed=3, size=1)
        ok = verify_preserver(g, p.edges, S, fault_sets=sampled)
        bound = thm31_ss_preserver_bound(n, sigma, 1)
        rows.append({
            "ft": 1, "n": n, "S": sigma, "edges": p.size,
            "paper_bound": round(bound), "ratio": p.size / bound,
            "verified": ok,
        })
    return rows


@pytest.fixture(scope="module")
def ft2_rows():
    rows = []
    for n in (24, 36, 48):
        g = generators.connected_erdos_renyi(n, 5.0 / n, seed=n)
        S = [0, n // 3, 2 * n // 3]
        p = ft_ss_preserver(g, S, faults_tolerated=2, seed=2)
        sampled = generators.fault_sample(g, 12, seed=8, size=2)
        ok = verify_preserver(g, p.edges, S, fault_sets=sampled)
        bound = thm31_ss_preserver_bound(n, len(S), 2)
        rows.append({
            "ft": 2, "n": n, "S": len(S), "edges": p.size,
            "paper_bound": round(bound), "ratio": p.size / bound,
            "verified": ok,
        })
    return rows


def test_thm31_1ft_benchmark(benchmark, source_sweep_rows, ft2_rows):
    n = 120
    g = generators.connected_erdos_renyi(n, 4.0 / n, seed=50)
    S = list(range(0, n, n // 8))[:8]
    benchmark(ft_ss_preserver, g, S, 1)

    emit(
        "thm31_ss_preserver_sources", source_sweep_rows,
        "THM31: 1-FT S x S preserver size vs |S| (bound |S| * n)",
        notes="paper: union of |S| restorable SPTs; size <= |S|(n-1).",
    )
    emit(
        "thm31_ss_preserver_2ft", ft2_rows,
        "THM31: 2-FT S x S preserver sizes vs n^1.5 |S|^0.5",
        notes="paper: overlay depth 1 with 2-restorable weights.",
    )
    for r in source_sweep_rows + ft2_rows:
        assert r["verified"]
        assert r["ratio"] <= 1.0


def test_thm31_2ft_benchmark(benchmark):
    n = 30
    g = generators.connected_erdos_renyi(n, 5.0 / n, seed=4)
    benchmark(ft_ss_preserver, g, [0, 15], 2)
