"""Shared plumbing for the benchmark suite.

Every benchmark computes an experiment table (paper bound vs measured
value), prints it, and persists it under ``benchmarks/results/`` so the
numbers recorded in EXPERIMENTS.md are regenerable artifacts.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Optional, Sequence

from repro.analysis.experiments import format_table

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, rows: Sequence[Dict], title: str,
         columns: Optional[Sequence[str]] = None,
         notes: str = "") -> str:
    """Render, print, and persist one experiment table."""
    table = format_table(rows, columns=columns, title=title)
    if notes:
        table = table + "\n" + notes
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(table + "\n")
    print()
    print(table)
    return table


def emit_json(name: str, payload: Dict) -> pathlib.Path:
    """Persist one experiment as machine-readable JSON.

    Written next to the ``.txt`` tables under ``benchmarks/results/``,
    so CI and trend tooling can consume the numbers without parsing
    the human-facing render.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
