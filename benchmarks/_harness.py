"""Shared plumbing for the benchmark suite.

Every benchmark computes an experiment table (paper bound vs measured
value), prints it, and persists it under ``benchmarks/results/`` so the
numbers recorded in EXPERIMENTS.md are regenerable artifacts.  Each
machine-readable payload written via :func:`emit_json` is additionally
folded into one top-level ``BENCH_SUMMARY.json`` at the repo root, so
the perf trajectory across PRs is a single machine-readable file
instead of a directory of per-bench snapshots.

Run ``python benchmarks/_harness.py`` to rebuild the summary from
whatever ``results/*.json`` files currently exist.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Optional, Sequence

from repro.analysis.experiments import format_table

# Both paths resolved, so relative_to() below stays valid when the
# checkout is reached through a symlink.
RESULTS_DIR = pathlib.Path(__file__).resolve().parent / "results"
SUMMARY_PATH = RESULTS_DIR.parent.parent / "BENCH_SUMMARY.json"


def emit(name: str, rows: Sequence[Dict], title: str,
         columns: Optional[Sequence[str]] = None,
         notes: str = "") -> str:
    """Render, print, and persist one experiment table."""
    table = format_table(rows, columns=columns, title=title)
    if notes:
        table = table + "\n" + notes
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(table + "\n")
    print()
    print(table)
    return table


def emit_json(name: str, payload: Dict) -> pathlib.Path:
    """Persist one experiment as machine-readable JSON.

    Written next to the ``.txt`` tables under ``benchmarks/results/``,
    so CI and trend tooling can consume the numbers without parsing
    the human-facing render.  The top-level ``BENCH_SUMMARY.json`` is
    refreshed from the full results directory on every write, and a
    ``history`` entry (bench name + params + headline speedup) is
    appended for this run — ``results/*.json`` keeps only the latest
    snapshot per bench, so the history list is what actually records
    the perf trajectory across PRs.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    params = payload.get("params")
    aggregate_summary(history_entry={
        "bench": name,
        "params": params,
        "speedup": payload.get("speedup"),
        # Uniform top-level marker so trend tooling can filter CI
        # smoke runs out of the trajectory without digging into each
        # bench's params shape (None = the bench didn't say).
        "quick": (params.get("quick")
                  if isinstance(params, dict) else None),
        # Fleet benches record their worker count so the trajectory
        # can separate scaling runs from single-process baselines
        # (None = not a fleet bench / the bench didn't say).
        "workers": (params.get("workers")
                    if isinstance(params, dict) else None),
        # Service benches record their concurrent-client count, same
        # idea one layer up (None = not a service bench).
        "clients": (params.get("clients")
                    if isinstance(params, dict) else None),
    })
    return path


def _load_history() -> List[Dict]:
    """The history list carried in the existing summary (if any).

    The history lives only in ``BENCH_SUMMARY.json`` itself — the
    per-bench files are latest-run snapshots — so it must be read
    back before the summary is rewritten, or every run would erase
    the trajectory it is supposed to record.
    """
    try:
        previous = json.loads(SUMMARY_PATH.read_text())
    except (OSError, ValueError):
        return []
    if not isinstance(previous, dict):
        return []
    history = previous.get("history")
    return history if isinstance(history, list) else []


def aggregate_summary(history_entry: Optional[Dict] = None) -> pathlib.Path:
    """Fold every ``results/*.json`` into the top-level summary.

    The summary maps each bench name to its latest full payload plus a
    flat ``speedups`` index (bench -> headline speedup, taken from the
    payload's ``speedup`` key when present) so trend tooling can diff
    the perf trajectory across PRs with one lookup, and an append-only
    ``history`` list — one entry per ``emit_json`` run, preserved
    across rebuilds — recording the run-over-run trajectory that the
    latest-snapshot ``benches`` mapping forgets.
    """
    benches: Dict[str, Dict] = {}
    speedups: Dict[str, float] = {}
    for path in sorted(RESULTS_DIR.glob("*.json")):
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            continue  # half-written or foreign file: skip, don't die
        if not isinstance(payload, dict):
            continue
        benches[path.stem] = payload
        headline = payload.get("speedup")
        if isinstance(headline, (int, float)):
            speedups[path.stem] = headline
    history = _load_history()
    if history_entry is not None:
        history.append(history_entry)
    summary = {
        "source": str(RESULTS_DIR.relative_to(SUMMARY_PATH.parent)),
        "benches": benches,
        "speedups": speedups,
        "history": history,
    }
    SUMMARY_PATH.write_text(
        json.dumps(summary, indent=2, sort_keys=True) + "\n"
    )
    return SUMMARY_PATH


if __name__ == "__main__":
    print(f"wrote {aggregate_summary()}")
