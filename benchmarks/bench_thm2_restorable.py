"""THM2/THM19 — the main result: restorable tiebreaking in every graph.

Verifies f-restorability (plus stability and consistency, Theorem 19)
across graph families, counts violations (always 0), and benchmarks
full single-fault restoration — the end-to-end operation Theorem 2
enables.  Also exercises Theorems 1 and 11 as instance sweeps.
"""

import pytest

from repro.core import properties
from repro.core.restoration import (
    restore_by_concatenation,
    verify_restoration_lemma,
    verify_weighted_restoration_lemma,
)
from repro.core.scheme import RestorableTiebreaking
from repro.graphs import generators

from _harness import emit


FAMILIES = (("grid", 5), ("torus", 4), ("er", 24), ("hypercube", 4),
            ("cycle", 12))


@pytest.fixture(scope="module")
def verification_rows():
    rows = []
    for family, size in FAMILIES:
        g = generators.by_name(family, size, seed=5)
        scheme = RestorableTiebreaking.build(g, f=1, seed=5)
        violations = properties.restorability_violations(scheme)
        pairs = [(0, g.n - 1), (1, g.n // 2)]
        consistent = properties.is_consistent(scheme, pairs=pairs)
        stable = not properties.stability_violations(scheme, pairs=pairs)
        rows.append({
            "family": family,
            "n": g.n,
            "m": g.m,
            "restore_violations": len(violations),
            "consistent": consistent,
            "stable": stable,
        })
    return rows


@pytest.fixture(scope="module")
def lemma_rows():
    rows = []
    for family, size in (("grid", 4), ("er", 16), ("torus", 4)):
        g = generators.by_name(family, size, seed=9)
        thm1 = thm11 = checked = 0
        for e in g.edges():
            for s in range(0, g.n, 3):
                for t in range(1, g.n, 3):
                    if s == t:
                        continue
                    checked += 1
                    thm1 += verify_restoration_lemma(g, s, t, e)
                    thm11 += verify_weighted_restoration_lemma(g, s, t, e)
        rows.append({
            "family": family, "n": g.n, "instances": checked,
            "thm1_holds": thm1, "thm11_holds": thm11,
        })
    return rows


def test_thm2_restoration_benchmark(benchmark, verification_rows,
                                    lemma_rows):
    g = generators.connected_erdos_renyi(100, 0.05, seed=8)
    scheme = RestorableTiebreaking.build(g, f=1, seed=8)
    path = scheme.path(0, 99)
    fault = list(path.edges())[len(list(path.edges())) // 2]

    benchmark(restore_by_concatenation, scheme, 0, 99, [fault])

    emit(
        "thm2_restorable", verification_rows,
        "THM2/THM19: restorability + consistency + stability "
        "(exhaustive single-fault sweeps)",
        notes="paper: violations must be 0 everywhere; measured: as shown.",
    )
    emit(
        "thm1_thm11_lemmas", lemma_rows,
        "THM1/THM11: restoration lemmas verified instance-wise",
        notes="paper: both lemmas hold on all instances.",
    )
    assert all(r["restore_violations"] == 0 for r in verification_rows)
    assert all(r["thm1_holds"] == r["instances"] for r in lemma_rows)
    assert all(r["thm11_holds"] == r["instances"] for r in lemma_rows)
