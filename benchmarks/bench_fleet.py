"""FLEET — capacity-pooled throughput of the sharded engine fleet.

One experiment, the PR-8 acceptance bar: a **mixed** monitoring
stream (two ``EccentricityQuery`` probes + a ``DistanceQuery`` pair +
a ``ConnectivityQuery`` per fault set, ~5k queries total) is replayed
for several passes — the monitoring pattern: the same scenario
working set, revisited — through a :class:`repro.fleet.FleetSession`
at 1 worker and at 4 workers, **same per-worker LRU budget**.

This host is single-core, so the ≥3x bar cannot come from CPU
parallelism — and that is the point.  The fleet's win is *capacity
pooling* (the resource-pool idiom of the MAAS-pod / C-POD lineage):
the working set of distance vectors overflows one worker's LRU budget
(cyclic replay against an LRU that is even one entry too small hits
0%), but the router's fault-set affinity splits it across four
workers whose *aggregate* budget holds it — so every pass after the
first is served from warm caches instead of re-running BFS waves.
The 1-worker column pays the full wave cost every pass; the 4-worker
column pays it once.

Answers are asserted equal to a plain in-process
:class:`~repro.query.Session` before any timing is trusted, and the
merged :class:`~repro.scenarios.engine.CacheInfo` is asserted equal,
componentwise, to the sum of the per-worker reports.  ``delta=False``
on every side: the PR-5 delta path would patch most two-edge
scenarios and measure the repair kernels instead of the cache pool
(bench_incremental.py covers those).

Acceptance target: **>= 3x** throughput at 4 workers vs 1 worker.

Run standalone (CI smoke: ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_fleet.py [--quick]

Results are persisted human-readable (``results/fleet.txt``),
machine-readable (``results/fleet.json``), and aggregated into the
top-level ``BENCH_SUMMARY.json`` (history entries carry a ``workers``
param so the trajectory separates scaling runs from baselines).
"""

from __future__ import annotations

import argparse
import random
import sys
import time

from repro.fleet import FleetSession
from repro.graphs import generators
from repro.query import (
    ConnectivityQuery,
    DistanceQuery,
    EccentricityQuery,
    Session,
)
from repro.scenarios import CacheInfo, random_fault_sets

try:
    from _harness import emit, emit_json
except ImportError:  # running standalone, not under benchmarks/conftest
    import pathlib

    sys.path.insert(0, str(pathlib.Path(__file__).parent))
    from _harness import emit, emit_json


def build_stream(graph, num_faults: int, seed: int):
    """A mixed monitoring stream: per two-edge fault set, two
    eccentricity probes from random sources (each needs a full
    distance vector — no filter shortcut), one monitored pair, and a
    connectivity check (answered from whichever vector its group
    already computed)."""
    rng = random.Random(seed)
    stream = []
    for faults in random_fault_sets(graph, 2, num_faults, seed=seed + 1):
        s1, s2 = rng.sample(range(graph.n), 2)
        stream.append(EccentricityQuery(s1, faults))
        stream.append(EccentricityQuery(s2, faults))
        stream.append(DistanceQuery(rng.randrange(graph.n),
                                    rng.randrange(graph.n), faults))
        stream.append(ConnectivityQuery(faults))
    return stream


def run_fleet(graph, stream, passes: int, workers: int, memoize: int):
    """Replay the stream ``passes`` times through a fresh fleet.

    Timed from construction through the last pass — worker startup
    (engine builds, four of them at 4 workers) is part of the price
    of scaling out, so it is inside the clock, not outside it.
    """
    t0 = time.perf_counter()
    with FleetSession(graph, workers=workers, memoize=memoize,
                      delta=False) as fleet:
        answers = []
        for _ in range(passes):
            answers = fleet.answer(stream)
        seconds = time.perf_counter() - t0
        reports = fleet.worker_reports()
        per_worker = [info for rep in reports.values()
                      for _, info in rep.cache_infos]
        merged = fleet.cache_info()
        stats = fleet.stats
        respawns = fleet.registry.respawns
        fallbacks = fleet.registry.serial_fallbacks
    # the merged report must be exactly the componentwise sum of the
    # per-worker reports — the CacheInfo.merge contract, checked on
    # live fleets, not just unit fixtures
    if merged != CacheInfo.merge(per_worker):
        raise AssertionError("merged CacheInfo diverges from the "
                             "per-worker reports")
    for name in merged.keys():
        if name == "wave_backends":
            continue
        if merged[name] != sum(info[name] for info in per_worker):
            raise AssertionError(
                f"merged CacheInfo[{name}] is not the sum of the "
                f"per-worker reports")
    return {
        "answers": answers,
        "seconds": seconds,
        "cache_info": merged,
        "stats": stats,
        "respawns": respawns,
        "serial_fallbacks": fallbacks,
    }


def run_experiment(quick: bool, seed: int):
    if quick:
        n, num_faults, passes, memoize, fleet_sizes = 200, 40, 2, 70, (1, 2)
    else:
        n, num_faults, passes, memoize, fleet_sizes = \
            3000, 160, 8, 220, (1, 4)
    graph = generators.connected_erdos_renyi(n, 4.0 / n, seed=seed)
    stream = build_stream(graph, num_faults, seed + 1)

    reference = [a.value for a in
                 Session(graph, delta=False).answer(stream)]

    rows = []
    runs = {}
    for workers in fleet_sizes:
        run = run_fleet(graph, stream, passes, workers, memoize)
        if [a.value for a in run["answers"]] != reference:
            raise AssertionError(
                f"fleet({workers}) answers diverge from the "
                f"single-session run")
        runs[workers] = run
        info = run["cache_info"]
        rows.append({
            "workers": workers, "n": graph.n, "m": graph.m,
            "queries": len(stream) * passes,
            "seconds": run["seconds"],
            "vector_hits": info.vector_hits,
            "vector_misses": info.vector_misses,
            "speedup": runs[fleet_sizes[0]]["seconds"] / run["seconds"],
        })

    lo, hi = fleet_sizes
    speedup = runs[lo]["seconds"] / runs[hi]["seconds"]
    payload = {
        "bench": "fleet",
        "params": {"quick": quick, "seed": seed, "n": graph.n,
                   "fault_sets": num_faults, "passes": passes,
                   "memoize": memoize, "workers": hi,
                   "queries": len(stream) * passes},
        "rows": rows,
        "speedup": speedup,
        "single_worker": {
            "cache_info": dict(runs[lo]["cache_info"]),
            "by_worker": runs[lo]["stats"].by_worker,
        },
        "fleet": {
            "cache_info": dict(runs[hi]["cache_info"]),
            "by_worker": runs[hi]["stats"].by_worker,
            "respawns": runs[hi]["respawns"],
            "serial_fallbacks": runs[hi]["serial_fallbacks"],
        },
    }
    return rows, payload, speedup, runs, (lo, hi), len(stream) * passes


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small smoke run (CI): tiny graph, 1 -> 2 "
                             "workers, no speedup assertion")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    rows, payload, speedup, runs, (lo, hi), n_queries = run_experiment(
        args.quick, args.seed
    )
    emit(
        "fleet", rows,
        "FLEET: capacity-pooled throughput, sharded workers vs one "
        "worker (mixed eccentricity/pair/connectivity replay)",
        notes=(
            f"speedup: {speedup:.1f}x at {hi} workers on {n_queries} "
            f"mixed queries (target >= 3x on the full run); single "
            f"core — the win is the pooled LRU capacity, not CPU "
            f"parallelism; answers asserted equal to the in-process "
            f"session; merged CacheInfo asserted equal to the sum of "
            f"per-worker reports"
        ),
    )
    emit_json("fleet", payload)
    failed = []
    if not args.quick:
        if speedup < 3.0:
            failed.append(f"expected >= 3x, measured {speedup:.2f}x")
        if runs[hi]["cache_info"].vector_hits == 0:
            failed.append("the fleet's pooled caches served no "
                          "revisit — capacity pooling is not working")
        if runs[lo]["cache_info"].vector_hits > 0:
            failed.append("the single worker's LRU held the working "
                          "set — the budgets no longer isolate the "
                          "pooling effect")
    if runs[hi]["respawns"] or runs[hi]["serial_fallbacks"]:
        failed.append("the fleet degraded (respawn/serial fallback) "
                      "during a clean benchmark run")
    for line in failed:
        print(f"FAIL: {line}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
