"""ABLATION / FUTURE WORK — restorable tiebreaking on unweighted DAGs.

Section 1.2 leaves the DAG extension of Theorem 2 as future work
("very plausible").  This experiment sweeps random layered DAGs,
checks (a) the known DAG restoration lemma (existence over all tied
choices) and (b) the conjectured property: perturbation tiebreaking's
*selected* paths already restore by forward concatenation.  Every
instance observed so far satisfies (b) — empirical support for the
conjecture, with the caveat that the right formulation may differ.
"""

import pytest

from repro.dag import (
    DagTiebreaking,
    dag_restorability_violations,
    random_layered_dag,
    verify_dag_restoration_lemma,
)

from _harness import emit


CONFIGS = (
    (4, 3, 0.6, 0.0),
    (5, 4, 0.5, 0.0),
    (5, 4, 0.5, 0.2),   # skip arcs: unequal path lengths
    (6, 3, 0.7, 0.3),
)


@pytest.fixture(scope="module")
def dag_rows():
    rows = []
    for idx, (layers, width, p, skip_p) in enumerate(CONFIGS):
        dag = random_layered_dag(layers, width, p=p, seed=idx * 3 + 1,
                                 skip_p=skip_p)
        lemma_ok = all(
            verify_dag_restoration_lemma(dag, s, t, arc)
            for arc in dag.arcs()
            for s in range(0, dag.n, 3)
            for t in range(1, dag.n, 3)
            if s != t
        )
        scheme = DagTiebreaking(dag, seed=idx)
        violations = dag_restorability_violations(scheme)
        instances = dag.m * dag.n * (dag.n - 1)
        rows.append({
            "layers": layers, "width": width, "skip_p": skip_p,
            "n": dag.n, "arcs": dag.m,
            "lemma_holds": lemma_ok,
            "restorability_violations": len(violations),
            "instances_checked": instances,
        })
    return rows


def test_dag_restorability_benchmark(benchmark, dag_rows):
    dag = random_layered_dag(5, 4, p=0.5, seed=9, skip_p=0.1)
    scheme = DagTiebreaking(dag, seed=2)
    arcs = list(dag.arcs())[:3]

    benchmark(dag_restorability_violations, scheme, arcs,
              [(0, dag.n - 1)])

    emit(
        "ablation_dag_future_work", dag_rows,
        "FUTURE WORK: restorable tiebreaking on unweighted DAGs "
        "(empirical)",
        notes=(
            "paper: DAG extension conjectured (Section 1.2).  "
            "Observed: perturbation tiebreaking restored every "
            "instance — 0 violations across all sweeps."
        ),
    )
    assert all(r["lemma_holds"] for r in dag_rows)
    assert all(r["restorability_violations"] == 0 for r in dag_rows)
