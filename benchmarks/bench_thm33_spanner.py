"""THM7/THM33 — (f+1)-FT +4 additive spanners on O(n^{1+2^f/(2^f+1)}) edges.

Sweeps n for 1-FT spanners on *dense* random graphs (sparse inputs are
their own spanners — density is what makes the n^{3/2} bound bite) and
checks stretch on sampled fault sets.  2-FT is spot-checked at one
size.  The headline shape: spanner edges grow strictly slower than
graph edges, with ratio-to-bound <= 1.
"""

import pytest

from repro.analysis.bounds import fit_exponent, thm33_spanner_bound
from repro.graphs import generators
from repro.spanners import ft_plus4_spanner, verify_spanner

from _harness import emit

SIZES = (40, 80, 160)


@pytest.fixture(scope="module")
def sweep_rows():
    rows = []
    for n in SIZES:
        g = generators.connected_erdos_renyi(n, 0.35, seed=n)
        spanner = ft_plus4_spanner(g, faults_tolerated=1, seed=3)
        sampled = generators.fault_sample(g, 10, seed=2, size=1)
        ok = verify_spanner(g, spanner.edges, additive=4,
                            fault_sets=sampled)
        bound = thm33_spanner_bound(n, 0)  # f=0 overlay => n^{3/2}
        rows.append({
            "ft": 1, "n": n, "m": g.m, "spanner_edges": spanner.size,
            "bound_n1.5": round(bound), "ratio": spanner.size / bound,
            "centers": len(spanner.centers), "verified": ok,
        })
    # 2-FT spot check (overlay f=1 => bound n^{5/3})
    n = 36
    g = generators.connected_erdos_renyi(n, 0.4, seed=99)
    spanner = ft_plus4_spanner(g, faults_tolerated=2, seed=1)
    sampled = generators.fault_sample(g, 10, seed=5, size=2)
    ok = verify_spanner(g, spanner.edges, additive=4, fault_sets=sampled)
    bound = thm33_spanner_bound(n, 1)
    rows.append({
        "ft": 2, "n": n, "m": g.m, "spanner_edges": spanner.size,
        "bound_n1.5": round(bound), "ratio": spanner.size / bound,
        "centers": len(spanner.centers), "verified": ok,
    })
    return rows


def test_thm33_spanner_benchmark(benchmark, sweep_rows):
    g = generators.connected_erdos_renyi(80, 0.35, seed=80)
    benchmark(ft_plus4_spanner, g, 1)

    ft1 = [r for r in sweep_rows if r["ft"] == 1]
    slope, _ = fit_exponent(
        [r["n"] for r in ft1], [r["spanner_edges"] for r in ft1]
    )
    emit(
        "thm33_spanner", sweep_rows,
        "THM33: FT +4 spanner sizes vs paper bounds",
        notes=(
            f"paper: 1-FT bound n^1.5 (f=0 overlay), 2-FT bound n^5/3; "
            f"measured 1-FT growth exponent {slope:.2f} (dense inputs "
            f"grow ~n^2, the spanner must stay below ~n^1.5)."
        ),
    )
    assert all(r["verified"] for r in sweep_rows)
    assert all(r["ratio"] <= 1.2 for r in sweep_rows)
    assert slope < 1.7  # clearly subquadratic
