"""BACKENDS — pyloops vs numpy-vectorised kernels across the seam.

The PR-7 acceptance experiment: the same kernel workloads are served
by both registered backends (:mod:`repro.backends`) and timed —

* **single-wave** — one ``csr_bfs_distances`` traversal;
* **batch 32 / batch 256** — ``csr_bfs_distances_many``, the
  bit-packed multi-source wave against the loop sweep;
* **delta-repair** — ``csr_bfs_repair`` on a clustered orphan region;

across ``n in {200, 2_000, 20_000}`` sparse snapshots (``m = 4n``).
Every (workload, n) cell asserts the two backends' outputs are
**bit-identical** before any timing is trusted.  A final experiment
checks the auto-dispatch guard: on the smallest snapshot, ``auto``
must not regress more than 5% against forced ``pyloops`` (the
calibrated thresholds route tiny calls to the loops, so the dispatch
overhead is all that is being measured).

Acceptance targets (asserted on full runs, skipped under ``--quick``):
**>= 3x** vectorized speedup on the large batched workload, and the
small-graph auto guard above.

Run standalone (CI smoke: ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_backends.py [--quick]

Results are persisted human-readable (``results/backends.txt``),
machine-readable (``results/backends.json``), and folded into the
top-level ``BENCH_SUMMARY.json`` (including its per-run history).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.backends import numpy_or_none, set_backend
from repro.backends.dispatch import _pyloops_backend, _vectorized_backend
from repro.graphs import generators
from repro.spt.fastpaths import csr_bfs_distances

try:
    from _harness import emit, emit_json
except ImportError:  # running standalone, not under benchmarks/conftest
    import pathlib

    sys.path.insert(0, str(pathlib.Path(__file__).parent))
    from _harness import emit, emit_json


def best_of(fn, repeats):
    """(result, best seconds) over ``repeats`` calls."""
    result = None
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return result, best


def build_snapshot(n: int, seed: int):
    graph = generators.gnm(n, min(4 * n, n * (n - 1) // 2), seed=seed)
    return graph.csr()


def orphan_ball(csr, radius_target: int):
    """A clustered orphan region: the first ~n/8 vertices by hop depth."""
    dist = csr_bfs_distances(csr, None, 0)
    want = max(2, csr.n // 8)
    ranked = sorted(v for v in range(csr.n) if dist[v] > 0)
    ranked.sort(key=lambda v: (dist[v], v))
    return sorted(ranked[:want]), dist


def workloads(csr, seed: int):
    """(name, kernel, args, batch) probes over one snapshot."""
    import random

    rng = random.Random(seed)
    n = csr.n
    sources32 = [rng.randrange(n) for _ in range(32)]
    sources256 = [rng.randrange(n) for _ in range(256)]
    orphans, base = orphan_ball(csr, 2)
    return [
        ("single-wave", "csr_bfs_distances", (csr, None, 0), 1),
        ("batch 32", "csr_bfs_distances_many", (csr, None, sources32), 32),
        ("batch 256", "csr_bfs_distances_many", (csr, None, sources256),
         256),
        ("delta-repair", "csr_bfs_repair", (csr, None, base, orphans),
         len(orphans)),
    ]


def run_experiment(quick: bool, seed: int):
    sizes = [200] if quick else [200, 2_000, 20_000]
    pyl = _pyloops_backend()
    vec = _vectorized_backend()
    assert vec is not None, "bench_backends needs numpy"

    rows = []
    big_batched_speedup = None
    for n in sizes:
        csr = build_snapshot(n, seed + n)
        # best-of-3 even at the largest size: the first vectorized
        # call on a snapshot builds its ndarray mirror and faults in
        # the distance-matrix pages (setup cost, not kernel cost),
        # and single samples on shared machines swing 2-3x.
        repeats = 1 if quick else 3
        for name, kernel, args, batch in workloads(csr, seed):
            loops_out, t_loop = best_of(
                lambda: getattr(pyl, kernel)(*args), repeats)
            vec_out, t_vec = best_of(
                lambda: getattr(vec, kernel)(*args), repeats)
            if loops_out != vec_out:
                raise AssertionError(
                    f"{kernel} diverges between backends at n={n}")
            speedup = t_loop / t_vec if t_vec else float("inf")
            rows.append({
                "workload": name, "n": n, "m": len(csr.indices) // 2,
                "batch": batch, "pyloops_s": t_loop, "vectorized_s": t_vec,
                "speedup": speedup,
            })
            if name == "batch 256" and n == max(sizes):
                big_batched_speedup = speedup

    # Auto-dispatch guard: tiny calls must stay loops-priced.  The
    # wave itself is ~100us, so single-call samples drown the few-us
    # dispatch delta in timer jitter — each sample times a loop of
    # calls and the best per-call average is compared.
    csr_small = build_snapshot(200, seed)
    inner, samples = (5, 3) if quick else (50, 9)

    def per_call(fn):
        best = float("inf")
        for _ in range(samples):
            t0 = time.perf_counter()
            for _ in range(inner):
                fn()
            best = min(best, time.perf_counter() - t0)
        return best / inner

    set_backend("pyloops")
    try:
        t_forced = per_call(lambda: csr_bfs_distances(csr_small, None, 0))
    finally:
        set_backend(None)
    set_backend("auto")
    try:
        t_auto = per_call(lambda: csr_bfs_distances(csr_small, None, 0))
    finally:
        set_backend(None)
    auto_overhead = t_auto / t_forced - 1.0 if t_forced else 0.0
    rows.append({
        "workload": "auto-dispatch guard", "n": 200, "m": 400, "batch": 1,
        "pyloops_s": t_forced, "vectorized_s": t_auto,
        "speedup": 1.0 / (1.0 + auto_overhead),
    })

    payload = {
        "bench": "backends",
        "params": {"quick": quick, "seed": seed, "sizes": sizes},
        "rows": rows,
        "big_batched_speedup": big_batched_speedup,
        "auto_dispatch_overhead": auto_overhead,
    }
    return rows, payload, big_batched_speedup, auto_overhead


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small smoke run (CI): n=200 only, no "
                             "speedup assertions")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    if numpy_or_none() is None:
        print("bench_backends: numpy unavailable, nothing to compare")
        return 0

    rows, payload, big_speedup, auto_overhead = run_experiment(
        args.quick, args.seed)
    headline = (f"{big_speedup:.1f}x" if big_speedup is not None
                else "n/a (quick)")
    emit(
        "backends", rows,
        "BACKENDS: pyloops vs vectorized kernels "
        "(bit-identical outputs asserted per cell)",
        notes=(
            f"large batched speedup: {headline} (target >= 3x); "
            f"auto-dispatch overhead on a small single wave: "
            f"{auto_overhead * 100:+.1f}% (bar: <= 5%)"
        ),
    )
    emit_json("backends", payload)
    failed = []
    if not args.quick:
        if big_speedup is not None and big_speedup < 3.0:
            failed.append(
                f"large batched: expected >= 3x, measured "
                f"{big_speedup:.2f}x")
        if auto_overhead > 0.05:
            failed.append(
                f"auto dispatch regresses small waves by "
                f"{auto_overhead * 100:.1f}% (> 5%)")
    for line in failed:
        print(f"FAIL: {line}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
