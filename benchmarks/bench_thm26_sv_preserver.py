"""THM26 — f-FT S x V preserver size O(n^{2-1/2^f} |S|^{1/2^f}).

Sweeps n with |S| = sqrt(n)-ish sources at f = 0 and f = 1, measures
overlay sizes, and fits the growth exponent: the fitted slope must not
exceed the theorem's.  (f = 2 is spot-checked at one size — the overlay
explores ~n^2 fault chains, so sweeping it is simulation-prohibitive.)
"""

import math

import pytest

from repro.analysis.bounds import fit_exponent, thm26_sv_preserver_bound
from repro.core.scheme import RestorableTiebreaking
from repro.graphs import generators
from repro.preservers import ft_sv_preserver

from _harness import emit

SIZES = (40, 80, 160)


def _sources(n):
    k = max(2, round(math.sqrt(n) / 2))
    return list(range(0, n, n // k))[:k]


@pytest.fixture(scope="module")
def sweep_rows():
    rows = []
    for f in (0, 1):
        for n in SIZES:
            g = generators.connected_erdos_renyi(n, 4.0 / n, seed=n + f)
            scheme = RestorableTiebreaking.build(g, f=max(f, 1), seed=2)
            sources = _sources(n)
            p = ft_sv_preserver(scheme, sources, f=f)
            bound = thm26_sv_preserver_bound(n, len(sources), f)
            rows.append({
                "f": f, "n": n, "m": g.m, "S": len(sources),
                "edges": p.size, "paper_bound": round(bound),
                "ratio": p.size / bound,
                "fault_sets": p.fault_sets_explored,
            })
    # one f = 2 spot check
    n = 36
    g = generators.connected_erdos_renyi(n, 5.0 / n, seed=77)
    scheme = RestorableTiebreaking.build(g, f=2, seed=4)
    p = ft_sv_preserver(scheme, [0, n // 2], f=2)
    bound = thm26_sv_preserver_bound(n, 2, 2)
    rows.append({
        "f": 2, "n": n, "m": g.m, "S": 2, "edges": p.size,
        "paper_bound": round(bound), "ratio": p.size / bound,
        "fault_sets": p.fault_sets_explored,
    })
    return rows


def test_thm26_overlay_benchmark(benchmark, sweep_rows):
    g = generators.connected_erdos_renyi(60, 4.0 / 60, seed=5)
    scheme = RestorableTiebreaking.build(g, f=1, seed=5)

    def build():
        scheme.clear_cache()
        return ft_sv_preserver(scheme, [0, 20, 40], f=1)

    benchmark(build)

    f1 = [r for r in sweep_rows if r["f"] == 1]
    slope, _ = fit_exponent([r["n"] for r in f1], [r["edges"] for r in f1])
    notes = (
        f"paper exponent for f=1 with |S|~sqrt(n)/2: "
        f"n^1.5 * |S|^0.5 => ~n^1.75 worst-case; measured slope "
        f"{slope:.2f} (sparse ER graphs sit well below worst case)."
    )
    emit(
        "thm26_sv_preserver", sweep_rows,
        "THM26: S x V preserver overlay sizes vs paper bound",
        notes=notes,
    )
    assert all(r["ratio"] <= 1.0 for r in sweep_rows)
    assert slope <= 1.8
