"""QUERY — the batching planner vs per-call engine methods.

One experiment, the PR-4 acceptance bar: a **mixed** declarative
stream (``DistanceQuery`` pairs + ``VectorQuery`` +
``EccentricityQuery`` probes, many queries sharing each fault set) is
answered two ways:

* **per-method baseline** — each query issued through the engine's
  per-call surface (``pair_replacement_distance`` / ``source_vector``)
  on a fresh engine: every layer PR 1–3 built (memo, vector cache,
  touch filter) is active, but nothing groups *across* queries.
* **planner** — the same stream through a
  :class:`repro.query.Session`: the planner groups by canonical fault
  set, answers what the caches/filter can, and serves each group's
  remainder with one masked multi-source wave — waved from the
  *target* side here, because the monitored workload is skewed (many
  sources, few targets), so the cheapest wave starts from the targets.

Answers are asserted equal before any timing is trusted, and the
stream is built so every pair's fault provably touches the pair (the
touch filter cannot shortcut either side): the measured gap is
batching, not filtering.  Acceptance target: **>= 2x** on a ~5k-query
stream, with at least one group planned target-side.

Run standalone (CI smoke: ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_query_planner.py [--quick]

Results are persisted human-readable (``results/query_planner.txt``),
machine-readable (``results/query_planner.json``), and aggregated into
the top-level ``BENCH_SUMMARY.json``.
"""

from __future__ import annotations

import argparse
import random
import sys

from repro.analysis.experiments import timed
from repro.graphs import generators
from repro.query import (
    DistanceQuery,
    EccentricityQuery,
    Session,
    VectorQuery,
)
from repro.scenarios import ScenarioEngine
from repro.spt.bfs import UNREACHABLE, bfs_distances

try:
    from _harness import emit, emit_json
except ImportError:  # running standalone, not under benchmarks/conftest
    import pathlib

    sys.path.insert(0, str(pathlib.Path(__file__).parent))
    from _harness import emit, emit_json


def build_stream(graph, num_faults: int, num_sources: int,
                 num_targets: int, pairs_per_fault: int, seed: int):
    """A mixed query stream shaped like a monitoring deployment.

    Many monitored sources, few monitored targets (the skew that makes
    target-side waving pay), fault scenarios of **two** *core* links
    each — the edges lying on the most monitored shortest paths, found
    by scoring each edge with the exact arithmetic of the engine's
    touch filter — and per fault set a couple of vector/eccentricity
    probes from the target set.  Every emitted pair query's fault set
    touches the pair, so neither path can shortcut it.
    """
    rng = random.Random(seed)
    vertices = rng.sample(range(graph.n), num_sources + num_targets)
    sources = vertices[:num_sources]
    targets = vertices[num_sources:]
    dist = {v: bfs_distances(graph, v) for v in vertices}

    def touched_pairs(e):
        u, v = e
        out = []
        for s in sources:
            ds_u, ds_v = dist[s][u], dist[s][v]
            for t in targets:
                base = dist[s][t]
                if base < 0:
                    continue
                dt_u, dt_v = dist[t][u], dist[t][v]
                if ((ds_u >= 0 and dt_v >= 0 and ds_u + 1 + dt_v == base)
                        or (ds_v >= 0 and dt_u >= 0
                            and ds_v + 1 + dt_u == base)):
                    out.append((s, t))
        return out

    touched = {e: touched_pairs(e) for e in sorted(graph.edges())}
    core = sorted(touched, key=lambda e: (-len(touched[e]), e))
    core = [e for e in core if touched[e]][:max(4, num_faults // 3)]
    fault_sets = set()
    while len(fault_sets) < num_faults and len(core) >= 2:
        pair = tuple(sorted(rng.sample(core, 2)))
        fault_sets.add(pair)
        if len(fault_sets) >= len(core) * (len(core) - 1) // 2:
            break
    stream = []
    for faults in sorted(fault_sets):
        pairs = sorted(set(touched[faults[0]]) | set(touched[faults[1]]))
        for s, t in rng.sample(pairs, min(pairs_per_fault, len(pairs))):
            stream.append(DistanceQuery(s, t, faults))
        stream.append(VectorQuery(targets[0], faults))
        stream.append(EccentricityQuery(targets[-1], faults))
    rng.shuffle(stream)  # interleave fault sets like real traffic
    return stream


def per_method_loop(engine: ScenarioEngine, stream):
    """The baseline: the per-call engine surface, one query at a time."""
    out = []
    for q in stream:
        if isinstance(q, DistanceQuery):
            out.append(
                engine.pair_replacement_distance(q.source, q.target,
                                                 q.faults)
            )
        elif isinstance(q, VectorQuery):
            out.append(engine.source_vector(q.source, q.faults))
        else:  # EccentricityQuery
            vec = engine.source_vector(q.source, q.faults)
            out.append(UNREACHABLE if UNREACHABLE in vec else max(vec))
    return out


def run_experiment(quick: bool, seed: int):
    if quick:
        n, num_faults, num_sources, num_targets, per_fault = \
            150, 10, 8, 3, 12
    else:
        n, num_faults, num_sources, num_targets, per_fault = \
            600, 60, 100, 10, 84
    graph = generators.connected_erdos_renyi(n, 4.0 / n, seed=seed)
    stream = build_stream(graph, num_faults, num_sources, num_targets,
                          per_fault, seed + 1)

    # delta=False on BOTH sides: this bench isolates the grouping
    # advantage (planner waves vs per-call methods); the PR-5 delta
    # path would patch most scenarios on either side and measure the
    # repair kernels instead (bench_incremental.py covers those).
    loop_engine = ScenarioEngine(graph, delta=False)
    loop, loop_s = timed(per_method_loop, loop_engine, stream)

    session = Session(graph, delta=False)
    plan = session.planner.plan(stream)
    target_side_groups = sum(1 for g in plan.groups if g.side == "target")
    answers, plan_s = timed(session.answer, stream)
    planned = [a.value for a in answers]

    if planned != loop:
        raise AssertionError(
            "planner answers diverge from the per-call engine path"
        )

    speedup = loop_s / plan_s
    rows = [
        {"strategy": "per-call engine methods", "n": graph.n,
         "m": graph.m, "queries": len(stream), "seconds": loop_s,
         "speedup": 1.0},
        {"strategy": "Session planner (grouped waves)", "n": graph.n,
         "m": graph.m, "queries": len(stream), "seconds": plan_s,
         "speedup": speedup},
    ]
    payload = {
        "bench": "query_planner",
        "params": {"quick": quick, "seed": seed, "n": graph.n,
                   "fault_sets": num_faults, "sources": num_sources,
                   "targets": num_targets},
        "rows": rows,
        "queries": len(stream),
        "groups": len(plan.groups),
        "target_side_groups": target_side_groups,
        "speedup": speedup,
        "session_stats": vars(session.stats),
        "cache_info": dict(session.cache_info()),
    }
    return rows, payload, speedup, target_side_groups, len(stream)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small smoke run (CI): tiny graph, no "
                             "speedup assertion")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    rows, payload, speedup, target_groups, n_queries = run_experiment(
        args.quick, args.seed
    )
    emit(
        "query_planner", rows,
        "QUERY: batching planner vs per-call engine methods "
        "(mixed pair/vector/eccentricity stream)",
        notes=(
            f"speedup: {speedup:.1f}x on {n_queries} mixed queries "
            f"(target >= 2x); {target_groups} groups waved from the "
            f"target side; answers asserted equal to the per-call path"
        ),
    )
    emit_json("query_planner", payload)
    failed = []
    if not args.quick and speedup < 2.0:
        failed.append(f"expected >= 2x, measured {speedup:.2f}x")
    if not args.quick and target_groups == 0:
        failed.append("no group was planned target-side on a skewed "
                      "monitored workload")
    for line in failed:
        print(f"FAIL: {line}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
