"""THM3 — subset replacement paths in O(σm) + Õ(σ²n).

Sweeps σ on a long-diameter mesh (path length is what separates the
two algorithms: the naive baseline pays a full BFS per (pair, edge on
path), Algorithm 1 pays one near-linear candidate sweep per pair) and
times Algorithm 1 against the recompute baseline.  The paper's claim
is the runtime *shape*: Algorithm 1 wins and its advantage is widest
when paths are long; interpreter constants damp the asymptotic gap but
the winner must not flip.
"""

import random

import pytest

from repro.analysis.bounds import thm3_subset_rp_time
from repro.analysis.experiments import timed
from repro.core.scheme import RestorableTiebreaking
from repro.graphs import generators
from repro.replacement import (
    naive_subset_replacement_paths,
    subset_replacement_paths,
)

from _harness import emit

SIDE = 24  # 24 x 24 grid: n = 576, diameter 46


def _graph():
    return generators.grid(SIDE, SIDE)


def _sources(g, sigma, seed=1):
    return random.Random(seed).sample(range(g.n), sigma)


@pytest.fixture(scope="module")
def sweep_rows():
    g = _graph()
    rows = []
    for sigma in (4, 8, 16):
        sources = _sources(g, sigma)
        result, fast_s = timed(
            subset_replacement_paths, g, sources, seed=3
        )
        _naive, naive_s = timed(naive_subset_replacement_paths, g, sources)
        queries = sum(len(d) for d in result.distances.values())
        rows.append({
            "sigma": sigma,
            "n": g.n,
            "m": g.m,
            "queries": queries,
            "alg1_sec": fast_s,
            "naive_sec": naive_s,
            "speedup": naive_s / fast_s if fast_s else float("inf"),
            "bound_units": thm3_subset_rp_time(g.n, g.m, sigma),
        })
    return rows


def test_thm3_alg1_benchmark(benchmark, sweep_rows):
    g = _graph()
    sources = _sources(g, 8)
    scheme = RestorableTiebreaking.build(g, f=1, seed=3)

    benchmark(subset_replacement_paths, g, sources, scheme=scheme)

    emit(
        "thm3_subset_rp", sweep_rows,
        "THM3: Algorithm 1 vs naive recompute (subset-rp, 24x24 grid)",
        notes=(
            "paper: O(sigma*m) + O~(sigma^2*n) vs naive "
            "O(sigma^2*L*m); Algorithm 1 must win (speedup > 1) on "
            "long-path workloads."
        ),
    )
    assert all(r["speedup"] > 1.0 for r in sweep_rows if r["sigma"] >= 8)


def test_thm3_naive_benchmark(benchmark):
    g = _graph()
    sources = _sources(g, 8)
    benchmark(naive_subset_replacement_paths, g, sources)
