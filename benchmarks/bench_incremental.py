"""DELTA — incremental patching vs full masked waves.

The PR-5 acceptance experiment: an **adversarial tree-edge fault
stream** (every fault is an edge of the source's base shortest-path
tree, so every scenario *must* move distances — the touch filter can
never shortcut it, and the vector cache never repeats) is answered
two ways through the same :class:`~repro.query.session.Session`
surface:

* **full-wave engine** — ``delta=False``: every scenario pays one
  masked multi-source traversal of the whole snapshot (the PR 1–4
  state of the art for this stream);
* **delta engine** — ``delta=True``: the orphaned region of each
  fault is read off the base tree's subtree intervals, small regions
  are re-settled from their intact frontier by the repair kernels
  (:mod:`repro.incremental.repair`), and only the large ones fall
  back to a wave.

Answers are asserted equal element-for-element before any timing is
trusted, and the delta session must actually report ``"delta"``
provenance.  A second experiment feeds clustered multi-edge regional
failures (:func:`~repro.scenarios.enumerate.clustered_fault_sets`)
through the same pair of engines.  Acceptance target: **>= 3x** on the
tree-edge stream.

Run standalone (CI smoke: ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_incremental.py [--quick]

Results are persisted human-readable (``results/incremental.txt``),
machine-readable (``results/incremental.json``), and folded into the
top-level ``BENCH_SUMMARY.json`` (including its per-run history).
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.experiments import timed
from repro.graphs import generators
from repro.graphs.base import canonical_edge
from repro.query import Session, VectorQuery
from repro.scenarios import clustered_fault_sets
from repro.spt.bfs import bfs_tree

try:
    from _harness import emit, emit_json
except ImportError:  # running standalone, not under benchmarks/conftest
    import pathlib

    sys.path.insert(0, str(pathlib.Path(__file__).parent))
    from _harness import emit, emit_json


def tree_edge_stream(graph, source: int):
    """One ``VectorQuery`` per base-tree edge — every fault forces a
    reroute of the subtree hanging below it."""
    parent = bfs_tree(graph, source)
    edges = sorted(
        canonical_edge(v, p) for v, p in parent.items() if p is not None
    )
    return [VectorQuery(source, (e,)) for e in edges]


def run_stream(session: Session, stream):
    answers, seconds = timed(session.answer, stream)
    return [a.value for a in answers], answers, seconds


def run_experiment(quick: bool, seed: int):
    n = 200 if quick else 1500
    graph = generators.connected_erdos_renyi(n, 4.0 / n, seed=seed)
    source = 0
    stream = tree_edge_stream(graph, source)

    full_session = Session(graph, delta=False)
    full_values, _, full_s = run_stream(full_session, stream)

    delta_session = Session(graph)
    delta_values, delta_answers, delta_s = run_stream(delta_session, stream)

    if delta_values != full_values:
        raise AssertionError(
            "delta-patched vectors diverge from the full-wave path"
        )
    patched = sum(1 for a in delta_answers if a.patched)
    if patched == 0:
        raise AssertionError(
            "no query reported 'delta' provenance on a tree-edge stream"
        )
    speedup = full_s / delta_s
    info = delta_session.engine.cache_info()

    # Clustered regional failures: multi-edge fault sets inside one
    # BFS ball, the delta path's realistic adversary.
    regions = clustered_fault_sets(graph, 3, len(stream) // 2,
                                   radius=2, seed=seed + 1)
    cluster_stream = [VectorQuery(source, F) for F in regions]
    cfull_values, _, cfull_s = run_stream(Session(graph, delta=False),
                                          cluster_stream)
    cdelta_session = Session(graph)
    cdelta_values, _, cdelta_s = run_stream(cdelta_session, cluster_stream)
    if cdelta_values != cfull_values:
        raise AssertionError(
            "clustered-fault delta vectors diverge from the full-wave path"
        )
    cluster_speedup = cfull_s / cdelta_s

    rows = [
        {"stream": "tree-edge faults", "strategy": "full masked waves",
         "n": graph.n, "m": graph.m, "scenarios": len(stream),
         "seconds": full_s, "speedup": 1.0},
        {"stream": "tree-edge faults", "strategy": "delta patching",
         "n": graph.n, "m": graph.m, "scenarios": len(stream),
         "seconds": delta_s, "speedup": speedup},
        {"stream": "clustered faults (f=3)",
         "strategy": "full masked waves", "n": graph.n, "m": graph.m,
         "scenarios": len(cluster_stream), "seconds": cfull_s,
         "speedup": 1.0},
        {"stream": "clustered faults (f=3)", "strategy": "delta patching",
         "n": graph.n, "m": graph.m, "scenarios": len(cluster_stream),
         "seconds": cdelta_s, "speedup": cluster_speedup},
    ]
    payload = {
        "bench": "incremental",
        "params": {"quick": quick, "seed": seed, "n": graph.n,
                   "m": graph.m, "source": source,
                   "tree_edges": len(stream),
                   "clustered_scenarios": len(cluster_stream)},
        "rows": rows,
        "speedup": speedup,
        "cluster_speedup": cluster_speedup,
        "delta_answers": patched,
        "delta_hits": info.delta_hits,
        "delta_fallbacks": info.delta_fallbacks,
        "session_stats": vars(delta_session.stats),
        "cache_info": dict(info),
    }
    return rows, payload, speedup, cluster_speedup, patched, len(stream)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small smoke run (CI): tiny graph, no "
                             "speedup assertion")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    rows, payload, speedup, cluster_speedup, patched, scenarios = \
        run_experiment(args.quick, args.seed)
    emit(
        "incremental", rows,
        "DELTA: incremental patching vs full masked waves "
        "(adversarial tree-edge + clustered fault streams)",
        notes=(
            f"speedup: {speedup:.1f}x on {scenarios} tree-edge "
            f"scenarios (target >= 3x), {cluster_speedup:.1f}x on the "
            f"clustered stream; {patched}/{scenarios} answers served "
            f"with 'delta' provenance; answers asserted equal to the "
            f"full-wave path"
        ),
    )
    emit_json("incremental", payload)
    failed = []
    if not args.quick and speedup < 3.0:
        failed.append(f"expected >= 3x, measured {speedup:.2f}x")
    for line in failed:
        print(f"FAIL: {line}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
