"""SERVICE — cross-client wave coalescing of the scenario service.

One experiment, the PR-9 acceptance bar: **N concurrent clients
monitoring the same failures**.  Each round, every client asks about
the *same* two-edge fault set (its own eccentricity probes and a
monitored pair — the shared-working-set shape of a monitoring
deployment: one incident, many watchers).  The stream is driven two
ways:

* **independent** — N in-process :class:`~repro.query.Session`\\ s,
  one per client thread, each paying its own masked wave per round
  (today's idiom: every consumer builds its own engine);
* **service** — N :class:`~repro.service.ServiceClient`\\ s over one
  :class:`~repro.service.BackgroundServer` sharing a single backend
  session, where the coalescer merges the concurrent requests into
  one micro-batch per round and the planner's fault-set grouping
  turns N clients' probes into **one** wave.

Every service answer is asserted equal to the in-process session's
answer before any timing is trusted, and the coalesced wave count
(the backend's :class:`~repro.scenarios.engine.CacheInfo` batched-wave
tally) is asserted **strictly below** the per-client sum of the
independent sessions' merged tallies — the coalescing contract,
checked in quick mode too.  ``delta=False`` on every side so the
measurement is waves, not the PR-5 repair kernels.

Acceptance target (full run): **>= 2x** aggregate throughput for 8
coalescing clients vs 8 independent sessions, plus client-side
p50/p95 request latency for both modes.

Run standalone (CI smoke: ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_service.py [--quick]

Results are persisted human-readable (``results/service.txt``),
machine-readable (``results/service.json``), and aggregated into the
top-level ``BENCH_SUMMARY.json`` (history entries carry a ``clients``
param so the trajectory separates fan-in runs from baselines).
"""

from __future__ import annotations

import argparse
import random
import sys
import threading
import time

from repro.graphs import generators
from repro.query import (
    ConnectivityQuery,
    DistanceQuery,
    EccentricityQuery,
    Session,
)
from repro.scenarios import CacheInfo, random_fault_sets
from repro.service import BackgroundServer, ServiceClient

try:
    from _harness import emit, emit_json
except ImportError:  # running standalone, not under benchmarks/conftest
    import pathlib

    sys.path.insert(0, str(pathlib.Path(__file__).parent))
    from _harness import emit, emit_json


def build_rounds(graph, clients: int, num_rounds: int, seed: int):
    """Per-round, per-client query chunks over shared fault sets.

    Round ``r`` is one incident: a single two-edge fault set that
    every client queries — each client from its own probe sources
    (two eccentricities, which need full vectors and therefore a
    wave, plus a monitored pair and a connectivity ride-along).
    Returns ``rounds[r][c]`` -> list of queries.
    """
    rng = random.Random(seed)
    rounds = []
    for faults in random_fault_sets(graph, 2, num_rounds,
                                    seed=seed + 1):
        per_client = []
        for _ in range(clients):
            s1, s2 = rng.sample(range(graph.n), 2)
            per_client.append([
                EccentricityQuery(s1, faults),
                EccentricityQuery(s2, faults),
                DistanceQuery(rng.randrange(graph.n),
                              rng.randrange(graph.n), faults),
                ConnectivityQuery(faults),
            ])
        rounds.append(per_client)
    return rounds


def _drive(clients, rounds):
    """Drive every client through its rounds on concurrent threads.

    A barrier per round keeps the N clients in lockstep — the
    concurrent-incident shape the service coalesces — and each
    ``answer`` call's wall time is recorded for the latency
    percentiles.  Returns (answers[c], latencies_seconds).
    """
    n = len(clients)
    barrier = threading.Barrier(n)
    answers = [[] for _ in range(n)]
    latencies = [[] for _ in range(n)]
    errors = []

    def run(c: int) -> None:
        try:
            for per_client in rounds:
                barrier.wait()
                t0 = time.perf_counter()
                answers[c].extend(clients[c].answer(per_client[c]))
                latencies[c].append(time.perf_counter() - t0)
        except BaseException as exc:  # noqa: BLE001 — re-raised below
            errors.append(exc)
            barrier.abort()

    threads = [threading.Thread(target=run, args=(c,))
               for c in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]
    return answers, [x for per in latencies for x in per]


def _percentile(values, q: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[index]


def _wave_calls(info: CacheInfo) -> int:
    """Batched kernel calls recorded by an engine's counters."""
    return sum(count for _, count in info.wave_backends)


def run_independent(graph, rounds, clients: int):
    """N independent sessions, timed from construction."""
    t0 = time.perf_counter()
    sessions = [Session(graph, delta=False) for _ in range(clients)]
    answers, latencies = _drive(sessions, rounds)
    seconds = time.perf_counter() - t0
    merged = CacheInfo.merge(s.cache_info() for s in sessions)
    return {
        "answers": answers,
        "latencies": latencies,
        "seconds": seconds,
        "wave_calls": _wave_calls(merged),
        "cache_info": merged,
    }


def run_service(graph, rounds, clients: int):
    """N socket clients over one coalescing server, timed end to end.

    Server and client construction are inside the clock — connection
    setup is part of the price of the shared front, exactly as worker
    startup is inside the fleet bench's clock.
    """
    # One round in flight is clients * 4 queries: sizing max_batch to
    # exactly that makes the size trigger fire the moment the last
    # client's request lands, so the deadline is a straggler backstop
    # rather than a per-round latency floor.
    per_round = len(rounds[0]) * len(rounds[0][0])
    t0 = time.perf_counter()
    backend = Session(graph, delta=False)
    with BackgroundServer(backend, max_batch=per_round,
                          max_delay=0.02) as server:
        host, port = server.address
        handles = [ServiceClient(host, port, client=f"bench-{c}")
                   for c in range(clients)]
        try:
            answers, latencies = _drive(handles, rounds)
        finally:
            for handle in handles:
                handle.close()
        counters = server.server.counters()
    seconds = time.perf_counter() - t0
    info = backend.cache_info()
    return {
        "answers": answers,
        "latencies": latencies,
        "seconds": seconds,
        "wave_calls": _wave_calls(info),
        "cache_info": info,
        "counters": counters,
    }


def run_experiment(quick: bool, seed: int):
    if quick:
        n, num_rounds, clients = 200, 10, 3
    else:
        # Large enough that a masked wave dwarfs one socket round
        # trip — the regime the service is for; on toy graphs the
        # wire tax wins and you should just build a local Session.
        n, num_rounds, clients = 14000, 20, 8
    graph = generators.connected_erdos_renyi(n, 4.0 / n, seed=seed)
    rounds = build_rounds(graph, clients, num_rounds, seed + 1)
    total_queries = sum(len(chunk) for per in rounds for chunk in per)

    # the ground truth every mode must reproduce
    reference_session = Session(graph, delta=False)
    reference = [
        [a.value for a in reference_session.answer(per[c])]
        for per in rounds for c in range(clients)
    ]

    runs = {}
    rows = []
    for mode, runner in (("independent", run_independent),
                         ("service", run_service)):
        run = runner(graph, rounds, clients)
        got = [
            [a.value for a in run["answers"][c]
             [r * 4:(r + 1) * 4]]
            for r in range(len(rounds)) for c in range(clients)
        ]
        if got != reference:
            raise AssertionError(
                f"{mode} answers diverge from the in-process session")
        runs[mode] = run
        rows.append({
            "mode": mode, "clients": clients, "n": graph.n,
            "queries": total_queries,
            "seconds": run["seconds"],
            "throughput_qps": total_queries / run["seconds"],
            "wave_calls": run["wave_calls"],
            "p50_ms": _percentile(run["latencies"], 0.50) * 1e3,
            "p95_ms": _percentile(run["latencies"], 0.95) * 1e3,
        })

    speedup = runs["independent"]["seconds"] / runs["service"]["seconds"]
    coalesced = runs["service"]["counters"]["coalesced_queries"]
    payload = {
        "bench": "service",
        "params": {"quick": quick, "seed": seed, "n": graph.n,
                   "rounds": num_rounds, "clients": clients,
                   "queries": total_queries},
        "rows": rows,
        "speedup": speedup,
        "service": {
            "counters": runs["service"]["counters"],
            "wave_calls": runs["service"]["wave_calls"],
        },
        "independent": {
            "wave_calls": runs["independent"]["wave_calls"],
        },
    }
    return rows, payload, speedup, runs, coalesced, total_queries


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small smoke run (CI): tiny graph, 3 "
                             "clients, no speedup assertion")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    rows, payload, speedup, runs, coalesced, total = run_experiment(
        args.quick, args.seed
    )
    clients = payload["params"]["clients"]
    emit(
        "service", rows,
        "SERVICE: cross-client wave coalescing, N socket clients over "
        "one server vs N independent sessions (shared-incident "
        "monitoring replay)",
        notes=(
            f"speedup: {speedup:.1f}x aggregate for {clients} "
            f"coalescing clients on {total} queries (target >= 2x on "
            f"the full run); waves {runs['service']['wave_calls']} "
            f"coalesced vs {runs['independent']['wave_calls']} "
            f"independent; answers asserted equal to the in-process "
            f"session"
        ),
    )
    emit_json("service", payload)
    failed = []
    if runs["service"]["wave_calls"] >= runs["independent"]["wave_calls"]:
        failed.append(
            f"coalesced wave count "
            f"({runs['service']['wave_calls']}) is not strictly "
            f"below the per-client sum "
            f"({runs['independent']['wave_calls']}) — coalescing is "
            f"not merging concurrent clients")
    if coalesced == 0:
        failed.append("no query rode a shared wave — the coalescer "
                      "never merged concurrent requests")
    if not args.quick and speedup < 2.0:
        failed.append(f"expected >= 2x, measured {speedup:.2f}x")
    for line in failed:
        print(f"FAIL: {line}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
