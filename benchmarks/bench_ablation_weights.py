"""ABLATION — the three ATW constructions against each other.

The paper offers three ways to build an antisymmetric tiebreaking
weight function (Theorems 20, 23, Corollary 22) with different
bit-complexity/determinism trades.  This ablation measures what the
trade costs in practice: construction time, bits per edge, and
restoration latency (big integers make Dijkstra comparisons slower —
the deterministic weights' O(|E|)-bit values are the price of
determinism, exactly as Section 3.2 warns).
"""

import pytest

from repro.analysis.experiments import timed
from repro.core.restoration import restore_by_concatenation
from repro.core.scheme import RestorableTiebreaking
from repro.graphs import generators

from _harness import emit

METHODS = ("random", "uniform", "deterministic")


@pytest.fixture(scope="module")
def ablation_rows():
    g = generators.connected_erdos_renyi(80, 0.06, seed=44)
    rows = []
    for method in METHODS:
        scheme, build_s = timed(
            RestorableTiebreaking.build, g, 1, method, 3
        )
        path = scheme.path(0, 79)
        fault = next(iter(path.edges()))

        def restore():
            return restore_by_concatenation(scheme, 0, 79, [fault])

        result, restore_s = timed(restore)
        rows.append({
            "method": method,
            "bits_per_edge": scheme.weights.bits_per_edge(),
            "build_sec": build_s,
            "restore_sec": restore_s,
            "restored_hops": result.path.hops,
            "deterministic": method == "deterministic",
        })
    return rows


@pytest.mark.parametrize("method", METHODS)
def test_ablation_restore_benchmark(benchmark, method, ablation_rows):
    g = generators.connected_erdos_renyi(80, 0.06, seed=44)
    scheme = RestorableTiebreaking.build(g, f=1, method=method, seed=3)
    path = scheme.path(0, 79)
    fault = next(iter(path.edges()))
    scheme.tree(0)
    scheme.tree(79)

    benchmark(restore_by_concatenation, scheme, 0, 79, [fault])

    if method == METHODS[-1]:
        emit(
            "ablation_weights", ablation_rows,
            "ABLATION: ATW construction trade-offs "
            "(Thm 20 vs Cor 22 vs Thm 23)",
            notes=(
                "paper: deterministic costs O(|E|) bits/edge vs "
                "O(f log n) randomized; all three produce correct "
                "restorable schemes."
            ),
        )
        hops = {r["restored_hops"] for r in ablation_rows}
        assert len(hops) == 1  # all three restore to the same optimum
        det = next(r for r in ablation_rows
                   if r["method"] == "deterministic")
        rnd = next(r for r in ablation_rows if r["method"] == "random")
        assert det["bits_per_edge"] > 10 * rnd["bits_per_edge"]
