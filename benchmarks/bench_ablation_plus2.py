"""ABLATION — +2 vs +4 fault-tolerant spanners (Section 1.1's claim).

The paper motivates its +4 spanners by noting prior FT spanners only
achieved +2 stretch, and larger additive stretch buys sparsity.  This
experiment builds both on the same dense inputs: the +2 construction
pays for a ``C x V`` preserver where the +4 gets away with ``C x C``
(restorability's gift), so the +4 spanner must come out sparser —
which is exactly what the table shows.
"""

import pytest

from repro.graphs import generators
from repro.spanners import ft_plus2_spanner, ft_plus4_spanner, verify_spanner

from _harness import emit

SIZES = (40, 80, 120)


@pytest.fixture(scope="module")
def comparison_rows():
    rows = []
    for n in SIZES:
        g = generators.connected_erdos_renyi(n, 0.35, seed=n + 5)
        sampled = generators.fault_sample(g, 8, seed=2, size=1)
        p2 = ft_plus2_spanner(g, faults_tolerated=1, seed=3)
        p4 = ft_plus4_spanner(g, faults_tolerated=1, seed=3)
        ok2 = verify_spanner(g, p2.edges, additive=2, fault_sets=sampled)
        ok4 = verify_spanner(g, p4.edges, additive=4, fault_sets=sampled)
        rows.append({
            "n": n,
            "m": g.m,
            "plus2_edges": p2.size,
            "plus4_edges": p4.size,
            "plus4_savings": 1 - p4.size / p2.size,
            "plus2_ok": ok2,
            "plus4_ok": ok4,
        })
    return rows


def test_plus2_vs_plus4_benchmark(benchmark, comparison_rows):
    g = generators.connected_erdos_renyi(60, 0.35, seed=60)
    benchmark(ft_plus2_spanner, g, 1)

    emit(
        "ablation_plus2", comparison_rows,
        "SEC1.1: 1-FT +2 spanner (prior work) vs 1-FT +4 spanner "
        "(this paper)",
        notes=(
            "paper: larger additive stretch buys sparsity — +4 uses a "
            "C x C preserver (n^1.5) where +2 needs C x V (n^5/3); "
            "plus4_savings is the measured edge reduction."
        ),
    )
    assert all(r["plus2_ok"] and r["plus4_ok"] for r in comparison_rows)
    for r in comparison_rows:
        assert r["plus4_edges"] < r["plus2_edges"]
