"""Benchmark-suite conftest: make the local harness importable."""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent))
