"""FIG1 — tiebreaking sensitivity of the restoration lemma.

Reproduces the phenomenon of Figure 1: restoration-by-concatenation
with an innocently chosen (lexicographic BFS) tiebreaking scheme fails
on a measurable fraction of (pair, fault) instances, while the paper's
restorable tiebreaking never fails.  Also benchmarks the midpoint scan
itself — the operation a router performs at fault time.
"""

import pytest

from repro.analysis.experiments import figure1_experiment
from repro.core.restoration import midpoint_scan
from repro.core.scheme import RestorableTiebreaking
from repro.graphs import generators

from _harness import emit


@pytest.fixture(scope="module")
def fig1_rows():
    rows = []
    for family, size in (("grid", 6), ("torus", 5), ("er", 40),
                         ("hypercube", 4)):
        rows.extend(
            figure1_experiment([family], size, seed=7, limit=1500)
        )
    return rows


def test_fig1_failure_rates(benchmark, fig1_rows):
    """Benchmark one midpoint scan; assert the Figure-1 contrast."""
    g = generators.grid(6, 6)
    scheme = RestorableTiebreaking.build(g, f=1, seed=3)
    path = scheme.path(0, 35)
    fault = next(iter(path.edges()))
    scheme.tree(0)
    scheme.tree(35)

    benchmark(midpoint_scan, scheme, 0, 35, [fault])

    emit(
        "fig1_sensitivity", fig1_rows,
        "FIG1: naive restoration-by-concatenation failure rates",
        notes=(
            "paper: arbitrary tiebreaking can discard the correct "
            "midpoint (Fig. 1); restorable tiebreaking never fails "
            "(Theorem 2).  Expect failure_rate > 0 for bfs-lex "
            "somewhere and == 0 for restorable everywhere."
        ),
    )
    restorable_rows = [r for r in fig1_rows if r["scheme"] == "restorable"]
    bfs_rows = [r for r in fig1_rows if r["scheme"] == "bfs-lex"]
    assert all(r["failures"] == 0 for r in restorable_rows)
    assert sum(r["failures"] for r in bfs_rows) > 0
