"""ABLATION — "easy-to-implement changes to the routing table".

The paper's opening motivation: an ideal restoration solution avoids
recomputation *and* only needs small routing-table edits.  Stability
(Definition 16) is what delivers the second half: a fault can only
dirty the cells whose selected path used the failed edge.  This
experiment measures the actual patch size (changed next-hop cells) per
single link failure, against the full table size.
"""

import pytest

from repro.core.routing import fault_patch
from repro.core.scheme import RestorableTiebreaking
from repro.graphs import generators

from _harness import emit


@pytest.fixture(scope="module")
def patch_rows():
    rows = []
    for family, size in (("torus", 5), ("grid", 6), ("er", 40)):
        g = generators.by_name(family, size, seed=3)
        scheme = RestorableTiebreaking.build(g, f=1, seed=3)
        sizes = []
        for e in list(g.edges())[:12]:
            sizes.append(len(fault_patch(scheme, e)))
        table_cells = g.n * (g.n - 1)
        rows.append({
            "family": family,
            "n": g.n,
            "table_cells": table_cells,
            "mean_patch": sum(sizes) / len(sizes),
            "max_patch": max(sizes),
            "max_fraction": max(sizes) / table_cells,
        })
    return rows


def test_fault_patch_benchmark(benchmark, patch_rows):
    g = generators.torus(5, 5)
    scheme = RestorableTiebreaking.build(g, f=1, seed=3)
    e = next(iter(g.edges()))
    fault_patch(scheme, e)  # warm the per-fault trees

    benchmark(fault_patch, scheme, e)

    emit(
        "ablation_patch", patch_rows,
        "MOTIVATION: routing-table patch size per link failure "
        "(stability at work)",
        notes=(
            "paper: restoration should need only easy table changes; "
            "with a stable scheme a failure dirties only the cells "
            "whose path crossed it — single-digit percentages here."
        ),
    )
    assert all(r["max_fraction"] < 0.25 for r in patch_rows)
