"""ABLATION — preservers as computational substrates (Section 4.3).

The paper's Section 4.3 closes by relating its FT structures to
distance sensitivity oracles.  This ablation builds the sourcewise
single-fault DSO twice — preprocessing on the full graph vs inside the
1-FT ``{s} x V`` preserver — and measures the substrate-size and
preprocessing-time savings on increasingly dense inputs.  Answers are
identical by the preserver property; the savings grow with density
(the preserver is Õ(n^{3/2}) edges regardless of m).
"""

import pytest

from repro.analysis.experiments import timed
from repro.core.scheme import RestorableTiebreaking
from repro.graphs import generators
from repro.oracles import SourcewiseDSO

from _harness import emit

DENSITIES = (0.1, 0.25, 0.5)
N = 60


@pytest.fixture(scope="module")
def dso_rows():
    rows = []
    for p in DENSITIES:
        g = generators.connected_erdos_renyi(N, p, seed=int(p * 100))
        scheme = RestorableTiebreaking.build(g, f=1, seed=2)
        scheme.tree(0)  # shared warm-up so timings isolate the BFS work
        full, full_s = timed(SourcewiseDSO, g, [0], scheme=scheme)
        slim, slim_s = timed(
            SourcewiseDSO, g, [0], scheme=scheme, use_preserver=True
        )
        # spot-check equality of answers
        tree = scheme.tree(0)
        agreements = sum(
            full.query(0, v, e) == slim.query(0, v, e)
            for v in range(1, N)
            for e in tree.path_to(v).edges()
        )
        total = sum(
            1 for v in range(1, N) for _ in tree.path_to(v).edges()
        )
        rows.append({
            "density_p": p,
            "m": g.m,
            "full_substrate": full.substrate_edges,
            "preserver_substrate": slim.substrate_edges,
            "full_sec": full_s,
            "preserver_sec": slim_s,
            "answers_equal": f"{agreements}/{total}",
        })
    return rows


def test_dso_query_benchmark(benchmark, dso_rows):
    g = generators.connected_erdos_renyi(N, 0.25, seed=25)
    oracle = SourcewiseDSO(g, [0], seed=2)
    tree = oracle.scheme.tree(0)
    v = max(tree.reached_vertices(), key=tree.hop_distance)
    e = next(iter(tree.path_to(v).edges()))

    benchmark(oracle.query, 0, v, e)

    emit(
        "ablation_dso", dso_rows,
        "SEC4.3: sourcewise DSO — full-graph vs preserver substrate",
        notes=(
            "paper: FT preservers carry exactly the information DSOs "
            "need; the per-fault BFS substrate shrinks as density "
            "grows (substrate columns), with identical answers.  At "
            "this scale the one-time preserver build dominates "
            "wall-clock (sec columns) — it amortises when the "
            "preserver is shared across oracles, as in Theorem 30."
        ),
    )
    for r in dso_rows:
        assert r["preserver_substrate"] <= r["full_substrate"]
        done, total = r["answers_equal"].split("/")
        assert done == total
    # savings must grow with density
    savings = [
        r["full_substrate"] / r["preserver_substrate"] for r in dso_rows
    ]
    assert savings[-1] > savings[0]
